//! The compact text syntax for filter expressions.
//!
//! Grammar (whitespace-separated; juxtaposition is conjunction):
//!
//! ```text
//! expr    := or
//! or      := and ( "or" and )*
//! and     := unary ( "and"? unary )*
//! unary   := ( "not" | "!" ) unary | primary
//! primary := "(" expr ")" | "true" | "false" | term
//! term    := "pid"  "=" UINT
//!          | "rid"  "=" UINT
//!          | "cid"  "=" STRING        | "host" "=" STRING
//!          | "path" "=" STRING        (exact)
//!          | "path" "~" STRING        (glob: `*`, `?`)
//!          | "call" "=" NAME          (exact syscall name)
//!          | "class" "=" read|write|data|open|close|sync|stat|seek
//!          | "t" "=" "[" WTIME "," WTIME ( ")" | "]" )
//!          | "ok" "=" true|false
//!          | "size" CMP BYTES         (suffix k|m|g, binary)
//!          | "dur"  CMP TIME
//! CMP     := "<" | "<=" | "=" | ">=" | ">"
//! TIME    := NUMBER ("s" | "ms" | "us")     (decimal fractions allowed)
//! WTIME   := TIME                  (offset from the log's first event)
//!          | "HH:MM:SS[.ffffff]"   (absolute time of day, strace -tt)
//! STRING  := "..." (double-quoted) | bare word
//! ```
//!
//! Examples: `pid=42 path~"*.h5" t=[1.2s,3s) ok=false`,
//! `class=write and size>=1m`, `not (cid=s or cid=f)`,
//! `t=[09:00:00,09:00:02)`. Traces carry wall-clock starts, so the
//! offset form means "seconds into the run" — `t=[0s,2s)` is the first
//! two seconds — while the clock form pins the window to the recorded
//! time of day. Both endpoints must use the same form.

use st_model::Micros;

use crate::predicate::{CallClass, Cmp, Predicate};

/// A failed parse: what went wrong and where (byte offset into the
/// expression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset of the offending token in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a filter expression into a [`Predicate`].
///
/// ```
/// use st_query::{parse_expr, Predicate};
/// let p = parse_expr("pid=42 ok=false").unwrap();
/// assert_eq!(p, Predicate::Pid(42).and(Predicate::Ok(false)));
/// assert!(parse_expr("pid=").is_err());
/// ```
pub fn parse_expr(input: &str) -> Result<Predicate, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        len: input.len(),
    };
    if parser.peek().is_none() {
        return Err(ParseError {
            message: "empty expression".into(),
            offset: 0,
        });
    }
    let expr = parser.parse_or()?;
    if let Some(tok) = parser.peek() {
        return Err(ParseError {
            message: format!("unexpected trailing {}", tok.kind.describe()),
            offset: tok.offset,
        });
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    /// A bare word: keyword, number, name, or unquoted value.
    Word(String),
    /// A double-quoted string (quotes stripped).
    Str(String),
    Eq,
    Tilde,
    Lt,
    Le,
    Ge,
    Gt,
    Bang,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

impl TokenKind {
    fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("word {w:?}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eq => "'='".into(),
            TokenKind::Tilde => "'~'".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::Le => "'<='".into(),
            TokenKind::Ge => "'>='".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::Bang => "'!'".into(),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::LBracket => "'['".into(),
            TokenKind::RBracket => "']'".into(),
            TokenKind::Comma => "','".into(),
        }
    }
}

#[derive(Debug)]
struct Token {
    kind: TokenKind,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'"' => {
                let Some(close) = bytes[i + 1..].iter().position(|&c| c == b'"') else {
                    return Err(ParseError {
                        message: "unterminated string".into(),
                        offset: start,
                    });
                };
                tokens.push(Token {
                    kind: TokenKind::Str(input[i + 1..i + 1 + close].to_string()),
                    offset: start,
                });
                i += close + 2;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1
            }
            b'~' => {
                tokens.push(Token {
                    kind: TokenKind::Tilde,
                    offset: start,
                });
                i += 1
            }
            b'!' => {
                tokens.push(Token {
                    kind: TokenKind::Bang,
                    offset: start,
                });
                i += 1
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1
            }
            b'<' | b'>' => {
                let wide = bytes.get(i + 1) == Some(&b'=');
                let kind = match (b, wide) {
                    (b'<', true) => TokenKind::Le,
                    (b'<', false) => TokenKind::Lt,
                    (b'>', true) => TokenKind::Ge,
                    _ => TokenKind::Gt,
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i += if wide { 2 } else { 1 };
            }
            _ => {
                // Bare word: everything up to whitespace or punctuation.
                while i < bytes.len()
                    && !matches!(
                        bytes[i],
                        b' ' | b'\t'
                            | b'\n'
                            | b'\r'
                            | b'"'
                            | b'='
                            | b'~'
                            | b'!'
                            | b'('
                            | b')'
                            | b'['
                            | b']'
                            | b','
                            | b'<'
                            | b'>'
                    )
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word(input[start..i].to_string()),
                    offset: start,
                });
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let tok = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(tok)
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.peek().map(|t| t.offset).unwrap_or(self.len),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(tok) if &tok.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(tok) => Err(ParseError {
                message: format!(
                    "expected {}, found {}",
                    kind.describe(),
                    tok.kind.describe()
                ),
                offset: tok.offset,
            }),
            None => Err(self.err_here(format!("expected {}, found end of input", kind.describe()))),
        }
    }

    fn parse_or(&mut self) -> Result<Predicate, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Token { kind: TokenKind::Word(w), .. }) if w == "or") {
            self.pos += 1;
            lhs = lhs.or(self.parse_and()?);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Predicate, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::Word(w),
                    ..
                }) if w == "or" => break,
                Some(Token {
                    kind: TokenKind::Word(w),
                    ..
                }) if w == "and" => {
                    self.pos += 1;
                    lhs = lhs.and(self.parse_unary()?);
                }
                Some(Token {
                    kind: TokenKind::RParen | TokenKind::RBracket,
                    ..
                })
                | None => break,
                Some(_) => lhs = lhs.and(self.parse_unary()?),
            }
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Predicate, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Bang,
                ..
            }) => {
                self.pos += 1;
                Ok(self.parse_unary()?.not())
            }
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "not" => {
                self.pos += 1;
                Ok(self.parse_unary()?.not())
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Predicate, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                self.pos += 1;
                let inner = self.parse_or()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "true" => {
                self.pos += 1;
                Ok(Predicate::True)
            }
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "false" => {
                self.pos += 1;
                Ok(Predicate::False)
            }
            Some(Token {
                kind: TokenKind::Word(_),
                ..
            }) => self.parse_term(),
            Some(tok) => Err(ParseError {
                message: format!("expected a term, found {}", tok.kind.describe()),
                offset: tok.offset,
            }),
            None => Err(self.err_here("expected a term, found end of input")),
        }
    }

    fn parse_term(&mut self) -> Result<Predicate, ParseError> {
        let (key, key_offset) = match self.bump() {
            Some(Token {
                kind: TokenKind::Word(w),
                offset,
            }) => (w.clone(), *offset),
            _ => unreachable!("parse_primary checked for a word"),
        };
        match key.as_str() {
            "pid" => {
                self.expect(&TokenKind::Eq)?;
                Ok(Predicate::Pid(self.parse_u32("pid")?))
            }
            "rid" => {
                self.expect(&TokenKind::Eq)?;
                Ok(Predicate::Rid(self.parse_u32("rid")?))
            }
            "cid" => {
                self.expect(&TokenKind::Eq)?;
                Ok(Predicate::Cid(self.parse_string("cid")?))
            }
            "host" => {
                self.expect(&TokenKind::Eq)?;
                Ok(Predicate::Host(self.parse_string("host")?))
            }
            "path" => match self.bump().map(|t| (t.kind.clone(), t.offset)) {
                Some((TokenKind::Eq, _)) => Ok(Predicate::PathExact(self.parse_string("path")?)),
                Some((TokenKind::Tilde, _)) => {
                    Ok(Predicate::PathGlob(self.parse_string("path")?))
                }
                Some((other, offset)) => Err(ParseError {
                    message: format!("path takes '=' (exact) or '~' (glob), found {}", other.describe()),
                    offset,
                }),
                None => Err(self.err_here("path takes '=' (exact) or '~' (glob)")),
            },
            "call" => {
                self.expect(&TokenKind::Eq)?;
                Ok(Predicate::Call(self.parse_string("call")?))
            }
            "class" => {
                self.expect(&TokenKind::Eq)?;
                let word = self.parse_string("class")?;
                CallClass::parse(&word).map(Predicate::Class).ok_or(ParseError {
                    message: format!(
                        "unknown class {word:?} (read, write, data, open, close, sync, stat, seek)"
                    ),
                    offset: key_offset,
                })
            }
            "ok" => {
                self.expect(&TokenKind::Eq)?;
                match self.parse_string("ok")?.as_str() {
                    "true" => Ok(Predicate::Ok(true)),
                    "false" => Ok(Predicate::Ok(false)),
                    other => Err(ParseError {
                        message: format!("ok takes true or false, found {other:?}"),
                        offset: key_offset,
                    }),
                }
            }
            "size" => {
                let cmp = self.parse_cmp("size")?;
                let word = self.parse_string("size")?;
                let bytes = parse_bytes(&word).ok_or(ParseError {
                    message: format!("bad size {word:?} (integer with optional k/m/g suffix)"),
                    offset: key_offset,
                })?;
                Ok(Predicate::Size(cmp, bytes))
            }
            "dur" => {
                let cmp = self.parse_cmp("dur")?;
                let word = self.parse_string("dur")?;
                let micros = parse_time(&word).ok_or(ParseError {
                    message: format!("bad duration {word:?} (number with s/ms/us suffix)"),
                    offset: key_offset,
                })?;
                Ok(Predicate::Dur(cmp, micros))
            }
            "t" => {
                self.expect(&TokenKind::Eq)?;
                self.expect(&TokenKind::LBracket)?;
                let from_word = self.parse_string("window start")?;
                let (from, from_abs) = parse_window_time(&from_word).ok_or(ParseError {
                    message: format!(
                        "bad time {from_word:?} (offset with s/ms/us suffix, or HH:MM:SS[.ffffff])"
                    ),
                    offset: key_offset,
                })?;
                self.expect(&TokenKind::Comma)?;
                let to_word = self.parse_string("window end")?;
                let (to, to_abs) = parse_window_time(&to_word).ok_or(ParseError {
                    message: format!(
                        "bad time {to_word:?} (offset with s/ms/us suffix, or HH:MM:SS[.ffffff])"
                    ),
                    offset: key_offset,
                })?;
                if from_abs != to_abs {
                    return Err(ParseError {
                        message: format!(
                            "time window mixes a relative and an absolute endpoint \
                             ([{from_word},{to_word}]); use offsets for both or \
                             times of day for both"
                        ),
                        offset: key_offset,
                    });
                }
                let inclusive_end = match self.bump().map(|t| (t.kind.clone(), t.offset)) {
                    Some((TokenKind::RParen, _)) => false,
                    Some((TokenKind::RBracket, _)) => true,
                    Some((other, offset)) => {
                        return Err(ParseError {
                            message: format!(
                                "time window closes with ')' or ']', found {}",
                                other.describe()
                            ),
                            offset,
                        })
                    }
                    None => {
                        return Err(self.err_here("time window closes with ')' or ']'"));
                    }
                };
                if to < from {
                    return Err(ParseError {
                        message: format!("empty time window [{from_word},{to_word})"),
                        offset: key_offset,
                    });
                }
                Ok(Predicate::TimeWindow { from, to, inclusive_end, absolute: from_abs })
            }
            other => Err(ParseError {
                message: format!(
                    "unknown key {other:?} (pid, rid, cid, host, path, call, class, t, ok, size, dur)"
                ),
                offset: key_offset,
            }),
        }
    }

    fn parse_cmp(&mut self, key: &str) -> Result<Cmp, ParseError> {
        match self.bump().map(|t| (t.kind.clone(), t.offset)) {
            Some((TokenKind::Lt, _)) => Ok(Cmp::Lt),
            Some((TokenKind::Le, _)) => Ok(Cmp::Le),
            Some((TokenKind::Eq, _)) => Ok(Cmp::Eq),
            Some((TokenKind::Ge, _)) => Ok(Cmp::Ge),
            Some((TokenKind::Gt, _)) => Ok(Cmp::Gt),
            Some((other, offset)) => Err(ParseError {
                message: format!(
                    "{key} takes a comparison operator, found {}",
                    other.describe()
                ),
                offset,
            }),
            None => Err(self.err_here(format!("{key} takes a comparison operator"))),
        }
    }

    fn parse_string(&mut self, key: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) => Ok(w.clone()),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(s.clone()),
            Some(tok) => Err(ParseError {
                message: format!("{key} takes a value, found {}", tok.kind.describe()),
                offset: tok.offset,
            }),
            None => Err(self.err_here(format!("{key} takes a value"))),
        }
    }

    /// Parses a `u32` field exactly — out-of-range values are an error,
    /// never a silent truncation (`pid=4294967297` must not match pid 1).
    fn parse_u32(&mut self, key: &str) -> Result<u32, ParseError> {
        let offset = self.peek().map(|t| t.offset).unwrap_or(self.len);
        let word = self.parse_string(key)?;
        word.parse().map_err(|_| ParseError {
            message: format!("{key} takes an unsigned 32-bit integer, found {word:?}"),
            offset,
        })
    }
}

/// Parses a byte count with an optional binary suffix: `4096`, `64k`,
/// `16m`, `2g`.
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, scale) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let value: u64 = digits.parse().ok()?;
    value.checked_mul(scale)
}

/// Parses one time-window endpoint. Returns `(value, absolute)`:
/// `HH:MM:SS[.ffffff]` (the `strace -tt` clock) is an absolute time of
/// day, a suffixed number (`1.2s`) is an offset from the trace epoch.
fn parse_window_time(s: &str) -> Option<(Micros, bool)> {
    if s.contains(':') {
        Micros::parse_time_of_day(s).map(|m| (m, true))
    } else {
        parse_time(s).map(|m| (m, false))
    }
}

/// Parses a time value with a mandatory unit: `1.2s`, `300ms`, `1500us`.
/// Fractions are allowed down to microsecond resolution.
fn parse_time(s: &str) -> Option<Micros> {
    let (number, per_unit) = if let Some(n) = s.strip_suffix("us") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        return None;
    };
    let (whole, frac) = match number.split_once('.') {
        Some((w, f)) => (w, Some(f)),
        None => (number, None),
    };
    if whole.is_empty() && frac.is_none() {
        return None;
    }
    let mut micros = if whole.is_empty() {
        0
    } else {
        whole.parse::<u64>().ok()?.checked_mul(per_unit)?
    };
    if let Some(frac) = frac {
        // Fraction digits scale by unit/10^k; reject digits finer than
        // the microsecond grid instead of silently rounding.
        if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let denom = 10u64.checked_pow(frac.len() as u32)?;
        let value: u64 = frac.parse().ok()?;
        let scaled = value.checked_mul(per_unit)?;
        if scaled % denom != 0 {
            return None;
        }
        micros = micros.checked_add(scaled / denom)?;
    }
    Some(Micros(micros))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_style_expression() {
        let p = parse_expr("pid=42 path~\"*.h5\" t=[1.2s,3s) ok=false").unwrap();
        assert_eq!(
            p,
            Predicate::And(vec![
                Predicate::Pid(42),
                Predicate::PathGlob("*.h5".into()),
                Predicate::TimeWindow {
                    from: Micros(1_200_000),
                    to: Micros(3_000_000),
                    inclusive_end: false,
                    absolute: false,
                },
                Predicate::Ok(false),
            ])
        );
    }

    #[test]
    fn every_term_kind_parses() {
        for (src, expected) in [
            ("pid=1", Predicate::Pid(1)),
            ("rid=96", Predicate::Rid(96)),
            ("cid=s", Predicate::Cid("s".into())),
            ("host=jwc01", Predicate::Host("jwc01".into())),
            (
                "path=/etc/passwd",
                Predicate::PathExact("/etc/passwd".into()),
            ),
            (
                "path~\"/scratch/*\"",
                Predicate::PathGlob("/scratch/*".into()),
            ),
            ("call=openat", Predicate::Call("openat".into())),
            ("class=write", Predicate::Class(CallClass::Write)),
            ("ok=true", Predicate::Ok(true)),
            ("size>=1m", Predicate::Size(Cmp::Ge, 1 << 20)),
            ("size<4096", Predicate::Size(Cmp::Lt, 4096)),
            ("dur>10ms", Predicate::Dur(Cmp::Gt, Micros(10_000))),
            ("true", Predicate::True),
            ("false", Predicate::False),
            (
                "t=[0s,1s]",
                Predicate::TimeWindow {
                    from: Micros(0),
                    to: Micros(1_000_000),
                    inclusive_end: true,
                    absolute: false,
                },
            ),
            (
                "t=[09:00:00,09:00:01.5)",
                Predicate::TimeWindow {
                    from: Micros(9 * 3600 * 1_000_000),
                    to: Micros(9 * 3600 * 1_000_000 + 1_500_000),
                    inclusive_end: false,
                    absolute: true,
                },
            ),
        ] {
            assert_eq!(parse_expr(src).unwrap(), expected, "{src}");
        }
    }

    #[test]
    fn boolean_structure_and_precedence() {
        // `or` binds looser than juxtaposition-AND.
        let p = parse_expr("pid=1 pid=2 or pid=3").unwrap();
        assert_eq!(
            p,
            Predicate::Pid(1)
                .and(Predicate::Pid(2))
                .or(Predicate::Pid(3))
        );
        // Parentheses override.
        let q = parse_expr("pid=1 (pid=2 or pid=3)").unwrap();
        assert_eq!(
            q,
            Predicate::Pid(1).and(Predicate::Pid(2).or(Predicate::Pid(3)))
        );
        // Explicit `and` and `!`/`not` are synonyms of the sugar.
        assert_eq!(
            parse_expr("pid=1 and not pid=2").unwrap(),
            parse_expr("pid=1 !pid=2").unwrap()
        );
    }

    #[test]
    fn time_and_size_units() {
        assert_eq!(
            parse_expr("dur>=1500us").unwrap(),
            Predicate::Dur(Cmp::Ge, Micros(1500))
        );
        assert_eq!(
            parse_expr("dur>=0.5ms").unwrap(),
            Predicate::Dur(Cmp::Ge, Micros(500))
        );
        assert_eq!(
            parse_expr("size>=64k").unwrap(),
            Predicate::Size(Cmp::Ge, 65536)
        );
        assert_eq!(parse_expr("size=0").unwrap(), Predicate::Size(Cmp::Eq, 0));
    }

    #[test]
    fn errors_carry_position_and_reason() {
        for (src, needle) in [
            ("", "empty expression"),
            ("pid=", "takes a value"),
            ("pid=x", "unsigned 32-bit integer"),
            ("pid=4294967297", "unsigned 32-bit integer"),
            ("rid=99999999999", "unsigned 32-bit integer"),
            ("frob=1", "unknown key"),
            ("class=zap", "unknown class"),
            ("path!\"x\"", "'=' (exact) or '~' (glob)"),
            ("t=[1s,2s", "closes with"),
            ("t=[3s,1s)", "empty time window"),
            (
                "t=[0s,09:00:00)",
                "mixes a relative and an absolute endpoint",
            ),
            ("t=[25:00:00,26:00:00)", "bad time"),
            ("dur>=10", "bad duration"),
            ("size>=1x", "bad size"),
            ("ok=maybe", "true or false"),
            ("pid=1)", "unexpected trailing"),
            ("(pid=1", "expected ')'"),
            ("\"unterminated", "unterminated string"),
        ] {
            let err = parse_expr(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src}: expected {needle:?} in {:?}",
                err.message
            );
        }
    }

    #[test]
    fn fractional_precision_is_bounded() {
        // 1.2345678s has sub-microsecond digits → rejected, not rounded.
        assert!(parse_expr("dur>=1.2345678s").is_err());
        assert_eq!(
            parse_expr("dur>=1.234567s").unwrap(),
            Predicate::Dur(Cmp::Ge, Micros(1_234_567))
        );
    }
}
