//! Exploding one view into per-file / per-rank view families.
//!
//! The paper's Sec. V analysis contrasts access patterns *per file*
//! (the SSF shared file vs. the FPP per-process files) and *per rank*;
//! [`group_by`] turns one (possibly filtered) [`LogView`] into a family
//! of disjoint sub-views keyed by file path, pid, command id or host,
//! each of which projects to its own DFG through the `st-core` hooks.
//! The partition is exact: every kept event lands in exactly one group,
//! and the union of the groups is the input view.

use std::collections::HashMap;

use st_model::{CaseSlice, LogView};

/// The attribute a view is partitioned by.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupKey {
    /// One group per distinct file path (the paper's per-file access
    /// patterns).
    File,
    /// One group per process id (SMT/OpenMP children separate).
    Pid,
    /// One group per command identifier (e.g. SSF vs FPP runs).
    Cid,
    /// One group per host machine.
    Host,
}

impl GroupKey {
    /// Parses the CLI spelling (`file`, `pid`, `cid`, `host`).
    pub fn parse(s: &str) -> Option<GroupKey> {
        Some(match s {
            "file" => GroupKey::File,
            "pid" => GroupKey::Pid,
            "cid" => GroupKey::Cid,
            "host" => GroupKey::Host,
            _ => return None,
        })
    }
}

/// Partitions `view` into disjoint sub-views by `key`.
///
/// Groups come back in deterministic order: lexicographic by key string
/// for `File`/`Cid`/`Host`, numeric for `Pid`. Within a group, cases
/// and events keep the parent order, so the slicing invariants of
/// [`LogView::from_slices`] hold by construction.
pub fn group_by<'log>(view: &LogView<'log>, key: GroupKey) -> Vec<(String, LogView<'log>)> {
    let log = view.log();
    let cases = log.cases();
    // Group identity is an integer for every key kind: the path/cid/host
    // symbol index, or the pid. Names are resolved once per group at the
    // end, never per event.
    let mut groups: HashMap<u32, Vec<CaseSlice>> = HashMap::new();
    for s in view.slices() {
        let case = &cases[s.case_idx];
        for &k in &s.events {
            let id = match key {
                GroupKey::File => case.events[k as usize].path.0,
                GroupKey::Pid => case.events[k as usize].pid.0,
                GroupKey::Cid => case.meta.cid.0,
                GroupKey::Host => case.meta.host.0,
            };
            let slices = groups.entry(id).or_default();
            match slices.last_mut() {
                Some(last) if last.case_idx == s.case_idx => last.events.push(k),
                _ => slices.push(CaseSlice {
                    case_idx: s.case_idx,
                    events: vec![k],
                }),
            }
        }
    }
    let snapshot = log.snapshot();
    let mut named: Vec<(String, LogView<'log>)> = groups
        .into_iter()
        .map(|(id, slices)| {
            let name = match key {
                GroupKey::Pid => id.to_string(),
                _ => snapshot.resolve(st_model::Symbol(id)).to_string(),
            };
            (name, LogView::from_slices(log, slices))
        })
        .collect();
    match key {
        GroupKey::Pid => named.sort_by_key(|(name, _)| name.parse::<u32>().unwrap_or(u32::MAX)),
        _ => named.sort_by(|(a, _), (b, _)| a.cmp(b)),
    }
    named
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn sample() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for (cid, host, rid, rows) in [
            (
                "a",
                "h1",
                0u32,
                vec![(10u32, "/x/f0"), (10, "/x/f1"), (11, "/x/f0")],
            ),
            ("b", "h2", 1, vec![(20, "/x/f1"), (20, "/x/f2")]),
        ] {
            let meta = CaseMeta {
                cid: i.intern(cid),
                host: i.intern(host),
                rid,
            };
            let events = rows
                .iter()
                .enumerate()
                .map(|(k, (pid, p))| {
                    Event::new(
                        Pid(*pid),
                        Syscall::Read,
                        Micros(k as u64),
                        Micros(1),
                        i.intern(p),
                    )
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    fn sizes(groups: &[(String, LogView<'_>)]) -> Vec<(String, usize)> {
        groups
            .iter()
            .map(|(k, v)| (k.clone(), v.event_count()))
            .collect()
    }

    #[test]
    fn by_file_partitions_and_covers() {
        let log = sample();
        let view = LogView::full(&log);
        let groups = group_by(&view, GroupKey::File);
        assert_eq!(
            sizes(&groups),
            vec![
                ("/x/f0".to_string(), 2),
                ("/x/f1".to_string(), 2),
                ("/x/f2".to_string(), 1),
            ]
        );
        let total: usize = groups.iter().map(|(_, v)| v.event_count()).sum();
        assert_eq!(total, view.event_count());
    }

    #[test]
    fn by_pid_orders_numerically() {
        let log = sample();
        let view = LogView::full(&log);
        let groups = group_by(&view, GroupKey::Pid);
        assert_eq!(
            sizes(&groups),
            vec![
                ("10".to_string(), 2),
                ("11".to_string(), 1),
                ("20".to_string(), 2),
            ]
        );
    }

    #[test]
    fn by_cid_and_host_follow_case_meta() {
        let log = sample();
        let view = LogView::full(&log);
        assert_eq!(
            sizes(&group_by(&view, GroupKey::Cid)),
            vec![("a".to_string(), 3), ("b".to_string(), 2)]
        );
        assert_eq!(
            sizes(&group_by(&view, GroupKey::Host)),
            vec![("h1".to_string(), 3), ("h2".to_string(), 2)]
        );
    }

    #[test]
    fn grouping_a_filtered_view_stays_inside_it() {
        let log = sample();
        let snap = log.snapshot();
        let view = LogView::full(&log).refine(|_, e| snap.resolve(e.path) != "/x/f0");
        let groups = group_by(&view, GroupKey::File);
        assert_eq!(
            sizes(&groups),
            vec![("/x/f1".to_string(), 2), ("/x/f2".to_string(), 1)]
        );
    }

    #[test]
    fn empty_view_has_no_groups() {
        let log = sample();
        let view = LogView::empty(&log);
        assert!(group_by(&view, GroupKey::File).is_empty());
    }
}
