//! Predicate pushdown into the STLOG v2 store reader.
//!
//! Full-load querying decodes *every* column of *every* case into an
//! [`EventLog`] before the first predicate is evaluated. This module is
//! the standard analytic-columnar shortcut (Parquet-style row-group
//! statistics / zone maps): a [`Predicate`] is *lowered* into a
//! [`PrunePlan`] of conservative per-case and per-block decisions over
//! the store's zone maps, whole blocks (and whole cases) that provably
//! cannot contain a matching event are skipped without reading their
//! bytes, and the **exact** predicate is then re-evaluated over the
//! events that were decoded — so [`read_pruned`] returns precisely the
//! event set a full load followed by [`crate::scan`] would produce.
//!
//! Decisions are tri-state ([`Decision`]):
//!
//! * `Reject` — the zone map proves no event in the block matches
//!   (e.g. the queried pid is outside the block's pid range, the path
//!   symbol misses the block's bloom filter, the time window ends
//!   before the block starts);
//! * `Accept` — the zone map proves *every* event matches (e.g. the
//!   block's whole start span lies inside the window), so the residual
//!   re-evaluation is skipped;
//! * `Maybe` — decode and test each event.
//!
//! Lowering is resolution-aware: string terms (`cid=`, `host=`,
//! `path=`, `path~`, unknown `call=` names) are resolved against the
//! container's string table once, before any event byte is read — a
//! glob becomes the set of matching path symbols' bloom probes, and a
//! name that does not occur in the container rejects everything
//! outright. Relative time windows are rebased against the trace epoch
//! taken from the directory (the minimum case `start_min`), which
//! equals the epoch a full load would compute.

use st_model::{Case, CaseMeta, Event, EventLog, Interner, Micros, Symbol, Syscall};
use st_store::format::{path_bloom_probes, CaseDir, ZoneMap, CALL_MASK_OTHER};
use st_store::{BlockRead, StoreError};

pub use st_store::format::{ColumnSet, Decision};

use crate::predicate::{CallClass, Cmp, EvalCtx, Predicate};

/// Above this many candidate path symbols a glob term stops probing the
/// bloom filter per block and degrades to `Maybe` (the probe loop would
/// cost more than it saves).
const MAX_PATH_PROBES: usize = 512;

/// A [`Predicate`] lowered against one container's string table and
/// trace epoch: evaluates conservative [`Decision`]s over case meta and
/// block zone maps.
#[derive(Debug)]
pub struct PrunePlan {
    root: PNode,
    epoch: Micros,
}

/// Lowered predicate node. Structurally mirrors [`Predicate`], with
/// string terms resolved to symbols/masks/bloom probes.
#[derive(Debug)]
enum PNode {
    /// Matches every event.
    Any,
    /// Matches no event.
    NoneMatch,
    /// Cannot be decided from zone maps; always `Maybe`.
    Opaque,
    Pid(u32),
    Rid(u32),
    Cid(Option<Symbol>),
    Host(Option<Symbol>),
    /// Bloom probes of every candidate path symbol.
    Path(Vec<[(usize, u64); 2]>),
    /// Event matches only if its call is one of the named calls in
    /// `mask` (never an `Other` call).
    CallNamed {
        mask: u32,
    },
    /// Event matches only if its call is an `Other` call.
    CallOther,
    /// Absolute start-time window (relative windows are rebased against
    /// the trace epoch during lowering).
    Time {
        from: Micros,
        to: Micros,
        inclusive_end: bool,
    },
    Ok(bool),
    Size(Cmp, u64),
    Dur(Cmp, u64),
    And(Vec<PNode>),
    Or(Vec<PNode>),
    Not(Box<PNode>),
}

impl PrunePlan {
    /// Lowers `pred` against the reader's string table and directory.
    /// Works over any [`BlockRead`] — the resident `StoreReader` and
    /// the out-of-core `SegmentReader` compile to the same plan.
    ///
    /// Returns `None` for v1 containers (no directory, nothing to push
    /// into).
    pub fn compile<R: BlockRead + ?Sized>(pred: &Predicate, reader: &R) -> Option<PrunePlan> {
        let directory = reader.directory()?;
        let epoch = directory
            .iter()
            .filter(|c| c.events > 0)
            .map(|c| c.start_min)
            .min()
            .unwrap_or(Micros::ZERO);
        Some(PrunePlan {
            root: lower(pred, reader.strings(), epoch),
            epoch,
        })
    }

    /// The trace epoch the plan rebased relative time windows against:
    /// the earliest case start in the directory — by construction equal
    /// to the `earliest_start` a full load would compute, so residual
    /// evaluation must use the same value.
    pub fn epoch(&self) -> Micros {
        self.epoch
    }

    /// Decision for a whole case from its directory meta (identity
    /// attributes and start span). `Reject` skips every block of the
    /// case; `Accept` decodes them all without residual evaluation.
    pub fn decide_case(&self, case: &CaseDir) -> Decision {
        decide(&self.root, case, None)
    }

    /// Decision for one block from its zone map.
    pub fn decide_block(&self, case: &CaseDir, zone: &ZoneMap) -> Decision {
        decide(&self.root, case, Some(zone))
    }
}

/// Lowers one predicate node (resolving strings, rebasing relative time
/// windows against `epoch`).
fn lower(pred: &Predicate, strings: &[String], epoch: Micros) -> PNode {
    match pred {
        Predicate::True => PNode::Any,
        Predicate::False => PNode::NoneMatch,
        Predicate::Pid(pid) => PNode::Pid(*pid),
        Predicate::Rid(rid) => PNode::Rid(*rid),
        Predicate::Cid(name) => PNode::Cid(find_symbol(strings, name)),
        Predicate::Host(name) => PNode::Host(find_symbol(strings, name)),
        Predicate::PathExact(path) => match find_symbol(strings, path) {
            Some(sym) => PNode::Path(vec![path_bloom_probes(sym)]),
            None => PNode::NoneMatch,
        },
        Predicate::PathGlob(pattern) => {
            let mut probes = Vec::new();
            for (idx, s) in strings.iter().enumerate() {
                if crate::glob_match(pattern, s) {
                    probes.push(path_bloom_probes(Symbol(idx as u32)));
                    if probes.len() > MAX_PATH_PROBES {
                        return PNode::Opaque;
                    }
                }
            }
            if probes.is_empty() {
                PNode::NoneMatch
            } else {
                PNode::Path(probes)
            }
        }
        Predicate::Call(name) => {
            // A named spelling matches the named variant — and, in
            // principle, an `Other` call whose interned name collides
            // with it, so the named mask is widened by the Other case
            // whenever the name exists in the container at all.
            let named = Syscall::from_known_name(name)
                .and_then(|call| call.named_index())
                .map(|idx| PNode::CallNamed { mask: 1 << idx });
            let other = find_symbol(strings, name).map(|_| PNode::CallOther);
            match (named, other) {
                (Some(n), Some(o)) => PNode::Or(vec![n, o]),
                (Some(n), None) => n,
                (None, Some(o)) => o,
                (None, None) => PNode::NoneMatch,
            }
        }
        Predicate::Class(class) => PNode::CallNamed {
            mask: class_mask(*class),
        },
        Predicate::TimeWindow {
            from,
            to,
            inclusive_end,
            absolute,
        } => {
            if *absolute {
                PNode::Time {
                    from: *from,
                    to: *to,
                    inclusive_end: *inclusive_end,
                }
            } else {
                // Rebase the window onto absolute starts: the exact
                // evaluation computes `start - epoch ∈ [from, to)`,
                // which over u64 micros equals `start ∈ [epoch+from,
                // epoch+to)`. On (absurd) overflow the window cannot be
                // represented — degrade to Maybe rather than prune.
                match (
                    epoch.as_micros().checked_add(from.as_micros()),
                    epoch.as_micros().checked_add(to.as_micros()),
                ) {
                    (Some(lo), Some(hi)) => PNode::Time {
                        from: Micros(lo),
                        to: Micros(hi),
                        inclusive_end: *inclusive_end,
                    },
                    _ => PNode::Opaque,
                }
            }
        }
        Predicate::Ok(want) => PNode::Ok(*want),
        Predicate::Size(cmp, bytes) => PNode::Size(*cmp, *bytes),
        Predicate::Dur(cmp, dur) => PNode::Dur(*cmp, dur.as_micros()),
        Predicate::And(children) => {
            PNode::And(children.iter().map(|p| lower(p, strings, epoch)).collect())
        }
        Predicate::Or(children) => {
            PNode::Or(children.iter().map(|p| lower(p, strings, epoch)).collect())
        }
        Predicate::Not(inner) => PNode::Not(Box::new(lower(inner, strings, epoch))),
    }
}

/// Symbol of `name` in the container's string table, if present.
fn find_symbol(strings: &[String], name: &str) -> Option<Symbol> {
    strings
        .iter()
        .position(|s| s == name)
        .map(|idx| Symbol(idx as u32))
}

/// The named-call bitmask of a class (classes never contain `Other`
/// calls — [`CallClass::contains`] matches named variants only).
fn class_mask(class: CallClass) -> u32 {
    let mut mask = 0u32;
    for idx in 0..=u8::MAX {
        let Some(call) = Syscall::from_named_index(idx) else {
            break;
        };
        if class.contains(call) {
            mask |= 1 << idx;
        }
    }
    mask
}

/// Evaluates a lowered node against case meta and (for block decisions)
/// a zone map. With `zone == None` only case-decidable terms commit;
/// everything else is `Maybe`.
fn decide(node: &PNode, case: &CaseDir, zone: Option<&ZoneMap>) -> Decision {
    use Decision::{Accept, Maybe, Reject};
    match node {
        PNode::Any => Accept,
        PNode::NoneMatch => Reject,
        PNode::Opaque => Maybe,
        PNode::Pid(pid) => match zone {
            Some(z) if !z.may_contain_pid(*pid) => Reject,
            Some(z) if z.pid_min == z.pid_max && z.pid_min == *pid => Accept,
            _ => Maybe,
        },
        PNode::Rid(rid) => exact(case.rid == *rid),
        PNode::Cid(sym) => exact(*sym == Some(case.cid)),
        PNode::Host(sym) => exact(*sym == Some(case.host)),
        PNode::Path(probes) => match zone {
            Some(z) if !probes.iter().any(|p| z.may_contain_path(p)) => Reject,
            _ => Maybe,
        },
        PNode::CallNamed { mask } => match zone {
            Some(z) if z.call_mask & mask == 0 => Reject,
            Some(z) if z.call_mask & !mask == 0 => Accept,
            _ => Maybe,
        },
        PNode::CallOther => match zone {
            Some(z) if z.call_mask & CALL_MASK_OTHER == 0 => Reject,
            _ => Maybe,
        },
        PNode::Time {
            from,
            to,
            inclusive_end,
        } => {
            let (lo, hi) = match zone {
                Some(z) => (z.start_min, z.start_max),
                None => (case.start_min, case.start_max),
            };
            let above = |t: Micros| t > *to || (!inclusive_end && t == *to);
            if hi < *from || above(lo) {
                Reject
            } else if lo >= *from && !above(hi) {
                Accept
            } else {
                Maybe
            }
        }
        PNode::Ok(want) => match zone {
            Some(z) if z.ok_all => exact(*want),
            Some(z) if !z.ok_any => exact(!*want),
            _ => Maybe,
        },
        PNode::Size(cmp, n) => match zone {
            Some(z) if !z.any_sized => Reject,
            Some(z) if cmp_none(*cmp, z.size_min, z.size_max, *n) => Reject,
            Some(z) if z.all_sized && cmp_all(*cmp, z.size_min, z.size_max, *n) => Accept,
            _ => Maybe,
        },
        PNode::Dur(cmp, n) => match zone {
            Some(z) if cmp_none(*cmp, z.dur_min, z.dur_max, *n) => Reject,
            Some(z) if cmp_all(*cmp, z.dur_min, z.dur_max, *n) => Accept,
            _ => Maybe,
        },
        PNode::And(children) => {
            let mut all_accept = true;
            for child in children {
                match decide(child, case, zone) {
                    Reject => return Reject,
                    Maybe => all_accept = false,
                    Accept => {}
                }
            }
            if all_accept {
                Accept
            } else {
                Maybe
            }
        }
        PNode::Or(children) => {
            let mut all_reject = true;
            for child in children {
                match decide(child, case, zone) {
                    Accept => return Accept,
                    Maybe => all_reject = false,
                    Reject => {}
                }
            }
            if all_reject {
                Reject
            } else {
                Maybe
            }
        }
        PNode::Not(inner) => match decide(inner, case, zone) {
            Accept => Reject,
            Reject => Accept,
            Maybe => Maybe,
        },
    }
}

/// `Accept`/`Reject` from an exactly decidable condition.
fn exact(holds: bool) -> Decision {
    if holds {
        Decision::Accept
    } else {
        Decision::Reject
    }
}

/// Whether `v OP n` holds for **every** `v ∈ [lo, hi]`.
fn cmp_all(cmp: Cmp, lo: u64, hi: u64, n: u64) -> bool {
    match cmp {
        Cmp::Lt => hi < n,
        Cmp::Le => hi <= n,
        Cmp::Eq => lo == n && hi == n,
        Cmp::Ge => lo >= n,
        Cmp::Gt => lo > n,
    }
}

/// Whether `v OP n` holds for **no** `v ∈ [lo, hi]`.
fn cmp_none(cmp: Cmp, lo: u64, hi: u64, n: u64) -> bool {
    match cmp {
        Cmp::Lt => lo >= n,
        Cmp::Le => lo > n,
        Cmp::Eq => n < lo || n > hi,
        Cmp::Ge => hi < n,
        Cmp::Gt => hi <= n,
    }
}

/// The event columns a predicate reads during exact evaluation (its
/// meta terms — cid/host/rid — cost no columns).
pub fn required_columns(pred: &Predicate) -> ColumnSet {
    match pred {
        Predicate::True | Predicate::False => ColumnSet::EMPTY,
        Predicate::Pid(_) => ColumnSet::PID,
        Predicate::Rid(_) | Predicate::Cid(_) | Predicate::Host(_) => ColumnSet::EMPTY,
        Predicate::PathExact(_) | Predicate::PathGlob(_) => ColumnSet::PATH,
        Predicate::Call(_) | Predicate::Class(_) => ColumnSet::CALL,
        Predicate::TimeWindow { .. } => ColumnSet::START,
        Predicate::Ok(_) => ColumnSet::OK,
        Predicate::Size(..) => ColumnSet::SIZE,
        Predicate::Dur(..) => ColumnSet::DUR,
        Predicate::And(children) | Predicate::Or(children) => children
            .iter()
            .fold(ColumnSet::EMPTY, |acc, p| acc.union(required_columns(p))),
        Predicate::Not(inner) => required_columns(inner),
    }
}

/// Byte- and block-level accounting of one pruned read, for the CLI's
/// pushdown summary line and the benchmark snapshot.
#[derive(Debug, Clone, Default)]
pub struct PushdownStats {
    /// Cases in the container.
    pub cases_total: usize,
    /// Cases skipped whole (no block touched).
    pub cases_pruned: usize,
    /// Blocks in the container.
    pub blocks_total: usize,
    /// Blocks skipped (including those of pruned cases).
    pub blocks_pruned: usize,
    /// Blocks decoded without residual evaluation (zone-map `Accept`).
    pub blocks_accepted: usize,
    /// Events recorded in the container (from the directory).
    pub events_total: u64,
    /// Events decoded (survived block pruning).
    pub events_decoded: u64,
    /// Events in the result (survived the exact predicate).
    pub events_matched: u64,
    /// Bytes of the blocks section.
    pub bytes_total: u64,
    /// Column-segment bytes actually parsed.
    pub bytes_decoded: u64,
    /// The reader's cumulative fetch counter after this read
    /// ([`BlockRead::bytes_read`]): bytes fetched from the underlying
    /// medium since the reader was opened. A resident reader reports
    /// its whole image regardless of pruning; a seek reader over a
    /// fresh open reports head bytes plus exactly the surviving block
    /// extents — the out-of-core win `bytes_decoded` alone cannot show.
    pub bytes_read: u64,
}

/// Result of [`read_pruned`]: the matching events as an owned log (the
/// interner reproduces the container's symbol ids, exactly like
/// [`st_store::StoreReader::read`]) plus the pruning accounting.
#[derive(Debug)]
pub struct PrunedRead {
    /// Cases holding exactly the matching events, in container order;
    /// cases with no match are dropped (as [`crate::scan`] does).
    pub log: EventLog,
    /// What was pruned, decoded and matched.
    pub stats: PushdownStats,
    /// How the decode was scheduled (seq or par) and why. Kept out of
    /// [`PushdownStats`] on purpose: the stats are identical between
    /// sequential and parallel runs of the same read, the schedule is
    /// not.
    pub sched: SchedDecision,
}

/// The seq-vs-par choice the cost model made for one pruned read, with
/// a human-readable reason for session reports (`route.workers` /
/// `route.reason` notes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedDecision {
    /// Decode workers actually used (`1` = sequential in-place decode).
    pub workers: usize,
    /// Why: explicit request, core count, or the block/byte cost model.
    pub reason: String,
}

/// Parallel decode only pays off past a few surviving blocks — below
/// this, thread spawn + channel assembly beat any overlap.
const PAR_MIN_BLOCKS: usize = 4;

/// Estimated column-segment bytes below which a decode is too small to
/// amortize worker spawns (~tens of µs each against a decode throughput
/// of roughly 10 ns/byte).
const PAR_MIN_DECODE_BYTES: u64 = 1 << 20;

/// Column-segment bytes a block decode at `cols` will actually parse —
/// the unit of the scheduler's cost model.
fn estimated_decode_bytes(block: &st_store::format::BlockDir, cols: ColumnSet) -> u64 {
    let cols = cols.union(ColumnSet::IDENTITY);
    (0..st_store::format::NCOLS)
        .filter(|&col| cols.contains(ColumnSet::nth(col)))
        .map(|col| u64::from(block.col_lens[col]))
        .sum()
}

/// Pure seq-vs-par cost model: explicit `threads` requests are honored
/// (so the par ≡ seq property tests exercise the real parallel path
/// regardless of the host); `threads == 0` auto-selects from the core
/// count, surviving-block count and estimated decode bytes.
fn schedule(threads: usize, cores: usize, blocks: usize, est_bytes: u64) -> SchedDecision {
    let cap = blocks.max(1);
    if threads != 0 {
        let workers = threads.min(cap);
        let reason = if workers <= 1 {
            format!("seq: {threads} worker(s) requested for {blocks} surviving block(s)")
        } else {
            format!("par: {workers} workers requested explicitly")
        };
        return SchedDecision { workers, reason };
    }
    if cores <= 1 {
        return SchedDecision {
            workers: 1,
            reason: "seq: 1 core available".into(),
        };
    }
    if blocks < PAR_MIN_BLOCKS {
        return SchedDecision {
            workers: 1,
            reason: format!(
                "seq: {blocks} surviving block(s) below par threshold ({PAR_MIN_BLOCKS})"
            ),
        };
    }
    if est_bytes < PAR_MIN_DECODE_BYTES {
        return SchedDecision {
            workers: 1,
            reason: format!(
                "seq: ~{est_bytes} B estimated decode below par threshold \
                 ({PAR_MIN_DECODE_BYTES} B)"
            ),
        };
    }
    let workers = cores.min(cap);
    SchedDecision {
        workers,
        reason: format!(
            "par: {workers} workers over {blocks} blocks (~{est_bytes} B estimated decode, \
             {cores} cores)"
        ),
    }
}

/// One surviving block of the prune plan: which case it belongs to (as
/// an index into the surviving-case list) and how to treat its events.
struct Work<'dir> {
    case_ord: usize,
    meta: CaseMeta,
    block: &'dir st_store::format::BlockDir,
    decision: Decision,
}

/// Decodes one surviving block into `out` and (for `Maybe` blocks)
/// applies the residual predicate to the appended range in place,
/// returning the number of column-segment bytes parsed.
fn decode_work_into<R: BlockRead + ?Sized>(
    reader: &R,
    work: &Work<'_>,
    cols: ColumnSet,
    pred: &Predicate,
    ctx: &EvalCtx<'_>,
    out: &mut Vec<Event>,
) -> Result<usize, StoreError> {
    let first = out.len();
    let bytes = reader.decode_block(work.block, cols, out)?;
    if work.decision != Decision::Accept {
        let mut keep = first;
        for idx in first..out.len() {
            if pred.matches(ctx, &work.meta, &out[idx]) {
                out.swap(keep, idx);
                keep += 1;
            }
        }
        out.truncate(keep);
    }
    Ok(bytes)
}

/// Reads only the events of `reader` that satisfy `pred`, skipping
/// whole cases and blocks whose directory meta / zone maps prove they
/// cannot contain a match.
///
/// `emit` names the columns the caller needs on the returned events
/// (e.g. every column for re-storing, or everything except
/// `requested`/`offset` for DFG synthesis); the columns the predicate
/// itself reads are always decoded in addition, so the result is
/// exactly the event set of `scan(&reader.read()?, pred)` — projected
/// onto `emit ∪ required ∪ identity` columns, with neutral defaults
/// elsewhere. Pass [`ColumnSet::ALL`] for full-fidelity events.
///
/// Works over any [`BlockRead`]: a resident `StoreReader` skips only
/// decode work, an out-of-core `SegmentReader` additionally never
/// fetches a pruned block's bytes from disk.
///
/// Fails with [`StoreError::Corrupt`] on v1 containers (no directory);
/// callers fall back to `StoreReader::read` + [`crate::scan`] there.
pub fn read_pruned<R: BlockRead + ?Sized>(
    reader: &R,
    pred: &Predicate,
    emit: ColumnSet,
) -> Result<PrunedRead, StoreError> {
    read_pruned_par(reader, pred, emit, 1)
}

/// Parallel [`read_pruned`]: the blocks that survive pruning are fanned
/// out over a shared work queue to `threads` scoped workers for
/// decoding and residual evaluation — blocks are independently
/// decodable (in-block delta timestamps, per-block CRC), so only the
/// final per-case assembly is sequential. Produces exactly the
/// sequential result: the same log (symbol ids included) and the same
/// [`PushdownStats`].
///
/// `threads == 0` engages the cost-aware scheduler: it stays
/// sequential when the host has one core, when too few blocks survive
/// pruning, or when the estimated column bytes to decode are too small
/// to amortize worker spawns — and goes parallel otherwise. The choice
/// and its reason are returned in [`PrunedRead::sched`]. An explicit
/// `threads >= 1` is always honored (capped at the surviving block
/// count), keeping the unconditional parallel path available to
/// property tests and benchmarks.
pub fn read_pruned_par<R: BlockRead + ?Sized>(
    reader: &R,
    pred: &Predicate,
    emit: ColumnSet,
    threads: usize,
) -> Result<PrunedRead, StoreError> {
    let _span = st_obs::span!("query.pushdown");
    let Some(plan) = PrunePlan::compile(pred, reader) else {
        return Err(st_store::CorruptKind::V1Pushdown.into());
    };
    let directory = reader.directory().expect("compile succeeded on v2");

    let interner = Interner::new_shared();
    for s in reader.strings() {
        interner.intern(s);
    }
    let mut log = EventLog::new(interner);
    let snapshot = log.snapshot();
    // Exactly `scan`'s epoch handling: relative windows rebase against
    // the earliest event start (the epoch the plan lowered with),
    // time-free predicates skip the epoch.
    let t0 = if pred.uses_relative_time() {
        plan.epoch()
    } else {
        Micros::ZERO
    };
    let ctx = EvalCtx {
        snapshot: &snapshot,
        t0,
    };
    let cols = emit.union(required_columns(pred));

    let mut stats = PushdownStats {
        cases_total: directory.len(),
        blocks_total: directory.iter().map(|c| c.blocks.len()).sum(),
        events_total: directory.iter().map(|c| c.events).sum(),
        bytes_total: directory
            .iter()
            .flat_map(|c| &c.blocks)
            .map(|b| u64::from(b.len))
            .sum(),
        ..PushdownStats::default()
    };

    // Plan: walk the directory once, deciding every case and block.
    // Pruned units are accounted here; the survivors become the decode
    // work list (cheap — no event byte is touched).
    let plan_span = st_obs::span!("query.pushdown.plan");
    let mut metas: Vec<CaseMeta> = Vec::new();
    let mut work: Vec<Work<'_>> = Vec::new();
    for case in directory {
        let case_decision = plan.decide_case(case);
        if case_decision == Decision::Reject {
            stats.cases_pruned += 1;
            stats.blocks_pruned += case.blocks.len();
            continue;
        }
        let meta = CaseMeta {
            cid: case.cid,
            host: case.host,
            rid: case.rid,
        };
        let case_ord = metas.len();
        metas.push(meta);
        for block in &case.blocks {
            let decision = if case_decision == Decision::Accept {
                Decision::Accept
            } else {
                plan.decide_block(case, &block.zone)
            };
            match decision {
                Decision::Reject => stats.blocks_pruned += 1,
                Decision::Accept | Decision::Maybe => {
                    if decision == Decision::Accept {
                        stats.blocks_accepted += 1;
                    }
                    stats.events_decoded += u64::from(block.events);
                    work.push(Work {
                        case_ord,
                        meta,
                        block,
                        decision,
                    });
                }
            }
        }
    }
    drop(plan_span);

    // Decode: surviving blocks are independent (in-block delta
    // timestamps, per-block CRC). The sequential path streams each
    // block straight into its case's accumulator (no intermediate
    // buffers — this is the hot loop of a pass-all load); the parallel
    // path fans blocks out to scoped workers whose per-block results
    // land in order-indexed slots, so assembly — and therefore the
    // output — is identical either way.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let est_bytes: u64 = work
        .iter()
        .map(|item| estimated_decode_bytes(item.block, cols))
        .sum();
    let sched = schedule(threads, cores, work.len(), est_bytes);
    let workers = sched.workers;
    // Per-case accumulators. The sequential path decodes straight into
    // them, so pre-size each to its case's total surviving events; the
    // parallel path assembles from per-block buffers instead (the first
    // block's buffer is moved in), so empty vectors suffice there.
    let mut cases: Vec<Vec<Event>> = if workers <= 1 {
        let mut totals = vec![0usize; metas.len()];
        for item in &work {
            totals[item.case_ord] += item.block.events as usize;
        }
        totals.into_iter().map(Vec::with_capacity).collect()
    } else {
        metas.iter().map(|_| Vec::new()).collect()
    };
    let decode_span = st_obs::span!("query.pushdown.decode", blocks = work.len());
    if workers <= 1 {
        for item in &work {
            stats.bytes_decoded +=
                decode_work_into(reader, item, cols, pred, &ctx, &mut cases[item.case_ord])? as u64;
        }
    } else {
        let mut slots: Vec<Option<(Vec<Event>, usize)>> = (0..work.len()).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        let obs_cx = st_obs::context();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let work = &work;
                let ctx = &ctx;
                let obs_cx = obs_cx.clone();
                scope.spawn(move || {
                    let _obs = obs_cx.attach();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= work.len() {
                            break;
                        }
                        let item = &work[idx];
                        let mut events = Vec::with_capacity(item.block.events as usize);
                        let result = decode_work_into(reader, item, cols, pred, ctx, &mut events)
                            .map(|bytes| (events, bytes));
                        if tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (idx, result) in rx {
                slots[idx] = Some(result?);
            }
            Ok::<(), StoreError>(())
        })?;
        // Concatenate each case's surviving blocks in directory order.
        for (item, slot) in work.iter().zip(slots) {
            let (events, bytes) = slot.expect("every work item decoded");
            stats.bytes_decoded += bytes as u64;
            if cases[item.case_ord].is_empty() {
                cases[item.case_ord] = events;
            } else {
                cases[item.case_ord].extend(events);
            }
        }
    }

    drop(decode_span);

    // Cases with no match are dropped (as `scan` does).
    for (meta, events) in metas.into_iter().zip(cases) {
        if !events.is_empty() {
            log.push_case(Case { meta, events });
        }
    }
    stats.events_matched = log.total_events() as u64;
    stats.bytes_read = reader.bytes_read();
    // Mirror the stats into the obs counters so the report and
    // `PushdownStats` are two views of one accounting (the byte
    // counters are owned by the store layer, which increments them at
    // the fetch sites themselves).
    st_obs::add("cases_total", stats.cases_total as u64);
    st_obs::add("cases_pruned", stats.cases_pruned as u64);
    st_obs::add("blocks_total", stats.blocks_total as u64);
    st_obs::add("blocks_pruned", stats.blocks_pruned as u64);
    st_obs::add("events_decoded", stats.events_decoded);
    st_obs::add("events_matched", stats.events_matched);
    st_obs::add("bytes_decoded", stats.bytes_decoded);
    Ok(PrunedRead { log, stats, sched })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expr, scan};
    use st_model::{Event, Pid};
    use st_store::{to_bytes_blocked, StoreReader};
    use std::sync::Arc;

    /// Two cases, time-ordered, with distinct path/pid/ok phases so
    /// small blocks get discriminating zone maps.
    fn sample() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for (cid, rid) in [("a", 0u32), ("b", 1)] {
            let meta = CaseMeta {
                cid: i.intern(cid),
                host: i.intern("h1"),
                rid,
            };
            let mut events = Vec::new();
            for k in 0..40u64 {
                let path = if k < 20 {
                    i.intern(&format!("/usr/lib/so{}", k % 4))
                } else {
                    i.intern(&format!("/scratch/out{}.h5", k % 3))
                };
                let call = if k % 5 == 0 {
                    Syscall::Write
                } else {
                    Syscall::Read
                };
                let mut e = Event::new(
                    Pid(100 + rid),
                    call,
                    Micros(1_000 + k * 50),
                    Micros(5 + k % 7),
                    path,
                );
                if k % 6 == 0 {
                    e = e.failed();
                } else {
                    e = e.with_size(k * 100);
                }
                events.push(e);
            }
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    fn reader(block_events: usize) -> StoreReader {
        StoreReader::from_bytes(to_bytes_blocked(&sample(), block_events).unwrap()).unwrap()
    }

    fn check_equals_scan(expr: &str, block_events: usize) -> PushdownStats {
        let r = reader(block_events);
        let pred = parse_expr(expr).unwrap();
        let pruned = read_pruned(&r, &pred, ColumnSet::ALL).unwrap();
        let full = r.read().unwrap();
        let reference = scan(&full, &pred).to_event_log();
        assert_eq!(pruned.log.cases(), reference.cases(), "{expr}");
        pruned.stats
    }

    #[test]
    fn pushdown_matches_scan_across_predicates() {
        for expr in [
            "true",
            "false or pid=100",
            "path~\"*.h5\"",
            "path=\"/usr/lib/so1\"",
            "cid=a",
            "host=nope",
            "rid=1",
            "class=write and size>=1k",
            "ok=false",
            "not ok=false",
            "dur>=10us",
            "t=[0s,1ms)",
            "call=read",
            "call=statx",
            "pid=999",
            "class=write or path~\"/usr/*\"",
        ] {
            for blocks in [1, 7, 4096] {
                check_equals_scan(expr, blocks);
            }
        }
    }

    #[test]
    fn selective_filter_prunes_blocks() {
        // The first 20 events of each case live under /usr/lib, the
        // rest under /scratch; with 10-event blocks the .h5 glob must
        // reject the /usr/lib-only blocks.
        let stats = check_equals_scan("path~\"*.h5\"", 10);
        assert_eq!(stats.blocks_total, 8);
        assert!(stats.blocks_pruned >= 4, "{stats:?}");
        assert!(stats.bytes_decoded < stats.bytes_total / 2 + 1, "{stats:?}");
    }

    #[test]
    fn case_meta_prunes_whole_cases() {
        let stats = check_equals_scan("cid=a", 10);
        assert_eq!(stats.cases_pruned, 1);
        assert!(stats.blocks_pruned >= 4);
        // And the whole-case accept path skips residual evaluation.
        let stats = check_equals_scan("cid=a or cid=b", 10);
        assert_eq!(stats.blocks_accepted, stats.blocks_total);
    }

    #[test]
    fn time_window_prunes_by_start_span() {
        let stats = check_equals_scan("t=[0s,200us)", 10);
        // Only the first block of each case overlaps the window.
        assert_eq!(stats.blocks_pruned, 6);
    }

    #[test]
    fn accept_blocks_skip_residual_evaluation() {
        let stats = check_equals_scan("dur<1s", 10);
        assert_eq!(stats.blocks_accepted, stats.blocks_total, "{stats:?}");
        assert_eq!(stats.events_matched, stats.events_total);
    }

    #[test]
    fn parallel_decode_equals_sequential() {
        for expr in ["true", "path~\"*.h5\"", "ok=false", "cid=a or class=write"] {
            let pred = parse_expr(expr).unwrap();
            for blocks in [1, 7, 64] {
                let r = reader(blocks);
                let seq = read_pruned(&r, &pred, ColumnSet::ALL).unwrap();
                for threads in [2, 3, 8] {
                    let par = read_pruned_par(&r, &pred, ColumnSet::ALL, threads).unwrap();
                    assert_eq!(seq.log.cases(), par.log.cases(), "{expr} x{threads}");
                    assert_eq!(
                        format!("{:?}", seq.stats),
                        format!("{:?}", par.stats),
                        "{expr} x{threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduler_cost_model_picks_seq_when_par_cannot_pay() {
        // Explicit requests are always honored (capped at block count).
        let d = schedule(3, 1, 10, 0);
        assert_eq!(d.workers, 3);
        assert!(d.reason.starts_with("par:"), "{}", d.reason);
        let d = schedule(8, 16, 2, u64::MAX);
        assert_eq!(d.workers, 2);
        let d = schedule(1, 16, 100, u64::MAX);
        assert_eq!(d.workers, 1);
        assert!(d.reason.starts_with("seq:"), "{}", d.reason);
        // Auto: one core always decodes sequentially.
        let d = schedule(0, 1, 1_000, u64::MAX);
        assert_eq!(d.workers, 1);
        assert!(d.reason.contains("1 core"), "{}", d.reason);
        // Auto: too few surviving blocks.
        let d = schedule(0, 8, PAR_MIN_BLOCKS - 1, u64::MAX);
        assert_eq!(d.workers, 1);
        assert!(d.reason.contains("surviving block"), "{}", d.reason);
        // Auto: too few bytes to amortize spawns.
        let d = schedule(0, 8, 100, PAR_MIN_DECODE_BYTES - 1);
        assert_eq!(d.workers, 1);
        assert!(d.reason.contains("below par threshold"), "{}", d.reason);
        // Auto: enough of everything goes parallel, capped at cores.
        let d = schedule(0, 8, 100, PAR_MIN_DECODE_BYTES);
        assert_eq!(d.workers, 8);
        assert!(d.reason.starts_with("par:"), "{}", d.reason);
        let d = schedule(0, 8, 5, PAR_MIN_DECODE_BYTES);
        assert_eq!(d.workers, 5, "capped at surviving blocks");
    }

    #[test]
    fn auto_schedule_records_decision_and_matches_explicit() {
        let r = reader(10);
        let pred = parse_expr("true").unwrap();
        let auto = read_pruned_par(&r, &pred, ColumnSet::ALL, 0).unwrap();
        let seq = read_pruned(&r, &pred, ColumnSet::ALL).unwrap();
        assert_eq!(auto.log.cases(), seq.log.cases());
        assert_eq!(format!("{:?}", auto.stats), format!("{:?}", seq.stats));
        // The decision is recorded with a reason either way; this tiny
        // store is always below the byte threshold, so auto stays seq
        // regardless of the host's core count.
        assert_eq!(auto.sched.workers, 1, "{}", auto.sched.reason);
        assert!(
            auto.sched.reason.starts_with("seq:"),
            "{}",
            auto.sched.reason
        );
        let est: u64 = r
            .directory()
            .unwrap()
            .iter()
            .flat_map(|c| &c.blocks)
            .map(|b| estimated_decode_bytes(b, ColumnSet::ALL))
            .sum();
        assert!(est < PAR_MIN_DECODE_BYTES);
    }

    #[test]
    fn pushdown_respects_salvage_quarantine() {
        // Corrupt one mid-case block, salvage, and push predicates down
        // the salvaged reader: quarantined blocks are absent from the
        // vetted directory, so pruning must agree exactly with a scan of
        // the salvage-recovered log — never resurrecting lost events.
        let image = to_bytes_blocked(&sample(), 10).unwrap();
        let pristine = StoreReader::from_bytes(image.clone()).unwrap();
        let dir = pristine.directory().unwrap();
        let victim = &dir[0].blocks[1];
        let blocks_len: usize = dir
            .iter()
            .flat_map(|c| &c.blocks)
            .map(|b| b.len as usize)
            .sum();
        let mut damaged = image.to_vec();
        let at = damaged.len() - blocks_len + victim.offset as usize + 3;
        damaged[at] ^= 0x20;

        let path =
            std::env::temp_dir().join(format!("st-query-salvage-{}.stlog", std::process::id()));
        std::fs::write(&path, &damaged).unwrap();
        let salvaged = st_store::open_salvage(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(salvaged.report.losses.len(), 1);
        let recovered = salvaged.reader.read().unwrap();
        assert_eq!(recovered.total_events(), 70); // 80 minus the block

        for expr in ["true", "path~\"*.h5\"", "ok=false", "cid=a", "dur<1s"] {
            let pred = parse_expr(expr).unwrap();
            let reference = scan(&recovered, &pred).to_event_log();
            for threads in [1, 4] {
                let pruned =
                    read_pruned_par(&salvaged.reader, &pred, ColumnSet::ALL, threads).unwrap();
                assert_eq!(pruned.log.cases(), reference.cases(), "{expr} x{threads}");
                assert_eq!(pruned.stats.events_total, 70, "{expr}");
            }
        }
    }

    #[test]
    fn seek_reader_produces_identical_pruned_reads() {
        use st_store::{BytesSegment, SegmentReader};
        let image = to_bytes_blocked(&sample(), 10).unwrap();
        let resident = StoreReader::from_bytes(image.clone()).unwrap();
        for expr in ["true", "path~\"*.h5\"", "cid=a", "ok=false", "t=[0s,1ms)"] {
            let pred = parse_expr(expr).unwrap();
            let reference = read_pruned(&resident, &pred, ColumnSet::ALL).unwrap();
            for threads in [1, 4] {
                // Fresh reader per run so bytes_read is exactly this
                // query's fetches (head + surviving extents).
                let seek =
                    SegmentReader::from_source(Arc::new(BytesSegment::new(image.clone()))).unwrap();
                let pruned = read_pruned_par(&seek, &pred, ColumnSet::ALL, threads).unwrap();
                assert_eq!(
                    reference.log.cases(),
                    pruned.log.cases(),
                    "{expr} x{threads}"
                );
                assert_eq!(
                    reference.stats.blocks_pruned, pruned.stats.blocks_pruned,
                    "{expr}"
                );
                assert_eq!(
                    reference.stats.bytes_decoded, pruned.stats.bytes_decoded,
                    "{expr}"
                );
                // The resident reader charges the whole image; the seek
                // reader at most that (strictly less when blocks prune).
                assert!(
                    pruned.stats.bytes_read <= reference.stats.bytes_read,
                    "{expr}"
                );
                if pruned.stats.blocks_pruned > 0 {
                    assert!(
                        pruned.stats.bytes_read < reference.stats.bytes_read,
                        "{expr}: pruning must save disk bytes"
                    );
                }
            }
        }
    }

    #[test]
    fn required_columns_cover_terms() {
        let pred = parse_expr("pid=1 path~\"*\" size>=1 t=[0s,1s)").unwrap();
        let cols = required_columns(&pred);
        for col in [
            ColumnSet::PID,
            ColumnSet::PATH,
            ColumnSet::SIZE,
            ColumnSet::START,
        ] {
            assert!(cols.contains(col));
        }
        assert!(!cols.contains(ColumnSet::OK));
        assert_eq!(required_columns(&Predicate::True), ColumnSet::EMPTY);
    }

    #[test]
    fn column_projection_still_matches_exactly() {
        let r = reader(10);
        let pred = parse_expr("size>=1k ok=true").unwrap();
        let pruned = read_pruned(&r, &pred, ColumnSet::EMPTY).unwrap();
        let full = r.read().unwrap();
        let reference = scan(&full, &pred).to_event_log();
        assert_eq!(pruned.log.total_events(), reference.total_events());
        for (a, b) in pruned.log.iter_events().zip(reference.iter_events()) {
            // Identity + predicate columns are faithful...
            assert_eq!(a.1.call, b.1.call);
            assert_eq!(a.1.start, b.1.start);
            assert_eq!(a.1.path, b.1.path);
            assert_eq!(a.1.size, b.1.size);
            assert_eq!(a.1.ok, b.1.ok);
            // ...unrequested ones default.
            assert_eq!(a.1.requested, None);
        }
    }

    #[test]
    fn v1_containers_are_refused() {
        let log = sample();
        let r = StoreReader::from_bytes(st_store::to_bytes_v1(&log).unwrap()).unwrap();
        assert!(PrunePlan::compile(&Predicate::True, &r).is_none());
        assert!(read_pruned(&r, &Predicate::True, ColumnSet::ALL).is_err());
    }

    #[test]
    fn plan_decisions_are_conservative() {
        // Every Reject block must contain no matching event; every
        // Accept block must contain only matching events.
        let r = reader(7);
        let full = r.read().unwrap();
        let snapshot = full.snapshot();
        for expr in [
            "path~\"*.h5\"",
            "ok=false",
            "class=write",
            "size>=2k",
            "t=[0s,500us]",
            "not class=write",
            "pid=100 and dur<6us",
        ] {
            let pred = parse_expr(expr).unwrap();
            let plan = PrunePlan::compile(&pred, &r).unwrap();
            let ctx = EvalCtx {
                snapshot: &snapshot,
                t0: full.earliest_start().unwrap_or(Micros::ZERO),
            };
            for (case_idx, case) in r.directory().unwrap().iter().enumerate() {
                let meta = full.cases()[case_idx].meta;
                for block in &case.blocks {
                    let mut events = Vec::new();
                    r.decode_block(block, ColumnSet::ALL, &mut events).unwrap();
                    let matches: Vec<bool> = events
                        .iter()
                        .map(|e| pred.matches(&ctx, &meta, e))
                        .collect();
                    match plan.decide_block(case, &block.zone) {
                        Decision::Reject => {
                            assert!(matches.iter().all(|m| !m), "{expr}: false reject")
                        }
                        Decision::Accept => {
                            assert!(matches.iter().all(|m| *m), "{expr}: false accept")
                        }
                        Decision::Maybe => {}
                    }
                }
            }
        }
    }
}
