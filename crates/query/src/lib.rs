//! # st-query — trace query & slicing engine
//!
//! The paper's inspection loop is *iterative narrowing* (Sec. III's
//! pre-DFG filtering, Sec. V's per-file SSF-vs-FPP contrast): filter the
//! event log down to the ranks, files and time windows that matter,
//! then rebuild the DFG on the slice. This crate is that layer as a
//! first-class engine:
//!
//! * [`Predicate`] — a typed filter algebra over the event attributes
//!   (pid, rank, cid, host, path glob/exact, syscall name/class, time
//!   window, success flag, size and duration thresholds) closed under
//!   `and`/`or`/`not`;
//! * [`parse_expr`] — the compact text syntax
//!   (`pid=42 path~"*.h5" t=[1.2s,3s) ok=false`) parsed into the
//!   algebra;
//! * [`scan`] / [`scan_par`] — zero-copy evaluation producing a
//!   [`LogView`] (per-case index vectors into the borrowed log; no
//!   event is cloned). The parallel scan fans cases out to scoped
//!   worker threads — the same worker infrastructure the parallel
//!   parser and DFG builder use — for million-event logs;
//! * [`group_by`] — explodes one view into per-file / per-pid /
//!   per-cid / per-host sub-view families (the paper's per-file access
//!   patterns), each of which projects to its own DFG through the
//!   `st-core` projection hooks (`Dfg::from_mapped_view`,
//!   `IoStatistics::compute_view`);
//! * [`pushdown`] — predicate pushdown into the STLOG v2 store reader:
//!   [`read_pruned`] lowers a predicate into conservative zone-map
//!   decisions and decodes only the blocks (and columns) that can
//!   matter, returning exactly the event set a full load + [`scan`]
//!   would.
//!
//! ```
//! use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
//! use st_query::{parse_expr, scan};
//! use std::sync::Arc;
//!
//! let mut log = EventLog::with_new_interner();
//! let i = Arc::clone(log.interner());
//! let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid: 0 };
//! log.push_case(Case::from_events(meta, vec![
//!     Event::new(Pid(1), Syscall::Read, Micros(10), Micros(1), i.intern("/scratch/x.h5"))
//!         .with_size(4096),
//!     Event::new(Pid(1), Syscall::Openat, Micros(20), Micros(1), i.intern("/usr/lib/a.so"))
//!         .failed(),
//! ]));
//!
//! // Narrow to failed calls — the Fig. 8a "openat storm" slice.
//! let pred = parse_expr("ok=false").unwrap();
//! let view = scan(&log, &pred);
//! assert_eq!(view.event_count(), 1);
//!
//! // Narrow to the HDF5 file by glob instead.
//! let h5 = scan(&log, &parse_expr(r#"path~"*.h5""#).unwrap());
//! assert_eq!(h5.event_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod expr;
pub mod group;
pub mod predicate;
pub mod pushdown;

use std::sync::atomic::{AtomicUsize, Ordering};

use st_model::{CaseSlice, EventLog, LogView};

pub use expr::{parse_expr, ParseError};
pub use group::{group_by, GroupKey};
pub use predicate::{glob_match, CallClass, Cmp, EvalCtx, Predicate};
pub use pushdown::{read_pruned, read_pruned_par, PrunePlan, PrunedRead, PushdownStats};

/// The trace epoch for relative time windows: the log's earliest event
/// start, or zero when the predicate never looks at relative time (so
/// time-free scans skip the extra O(n) pass) or the log is empty.
fn epoch_for(log: &EventLog, pred: &Predicate) -> st_model::Micros {
    if pred.uses_relative_time() {
        log.earliest_start().unwrap_or(st_model::Micros::ZERO)
    } else {
        st_model::Micros::ZERO
    }
}

/// Evaluates `pred` over every event of `log` in one sequential pass,
/// returning the matching slice as a zero-copy [`LogView`]. Relative
/// time windows (`t=[0s,2s)`) are measured from the log's earliest
/// event start.
pub fn scan<'log>(log: &'log EventLog, pred: &Predicate) -> LogView<'log> {
    let _span = st_obs::span!("query.scan");
    let snapshot = log.snapshot();
    let ctx = EvalCtx {
        snapshot: &snapshot,
        t0: epoch_for(log, pred),
    };
    let mut slices = Vec::new();
    let mut matched = 0u64;
    for (case_idx, case) in log.cases().iter().enumerate() {
        let events: Vec<u32> = case
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| pred.matches(&ctx, &case.meta, e))
            .map(|(k, _)| k as u32)
            .collect();
        if !events.is_empty() {
            matched += events.len() as u64;
            slices.push(CaseSlice { case_idx, events });
        }
    }
    st_obs::add("events_scanned", log.total_events() as u64);
    st_obs::add("events_matched", matched);
    LogView::from_slices(log, slices)
}

/// Parallel [`scan`]: cases are fanned out to `threads` scoped workers
/// (`0` = available parallelism) through an atomic work counter, the
/// per-case index vectors are reassembled in case order. Produces
/// exactly the same view as the sequential scan.
pub fn scan_par<'log>(log: &'log EventLog, pred: &Predicate, threads: usize) -> LogView<'log> {
    let n_cases = log.case_count();
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n_cases.max(1));
    if workers <= 1 {
        return scan(log, pred);
    }

    let _span = st_obs::span!("query.scan.par", workers = workers);
    let snapshot = log.snapshot();
    let t0 = epoch_for(log, pred);
    let mut slots: Vec<Option<Vec<u32>>> = (0..n_cases).map(|_| None).collect();
    {
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let snapshot = &snapshot;
                let cases = log.cases();
                scope.spawn(move || {
                    let ctx = EvalCtx { snapshot, t0 };
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= cases.len() {
                            break;
                        }
                        let case = &cases[idx];
                        let events: Vec<u32> = case
                            .events
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| pred.matches(&ctx, &case.meta, e))
                            .map(|(k, _)| k as u32)
                            .collect();
                        if tx.send((idx, events)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (idx, events) in rx {
                slots[idx] = Some(events);
            }
        });
    }

    let mut matched = 0u64;
    let slices: Vec<CaseSlice> = slots
        .into_iter()
        .enumerate()
        .filter_map(|(case_idx, slot)| {
            let events = slot.expect("every case scanned");
            (!events.is_empty()).then_some(CaseSlice { case_idx, events })
        })
        .collect();
    for s in &slices {
        matched += s.events.len() as u64;
    }
    st_obs::add("events_scanned", log.total_events() as u64);
    st_obs::add("events_matched", matched);
    LogView::from_slices(log, slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_model::{Case, CaseMeta, Event, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn synthetic(cases: usize, events_per_case: usize) -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for c in 0..cases {
            let meta = CaseMeta {
                cid: i.intern(if c % 2 == 0 { "a" } else { "b" }),
                host: i.intern("h"),
                rid: c as u32,
            };
            let events = (0..events_per_case)
                .map(|k| {
                    let mut e = Event::new(
                        Pid(100 + (k % 3) as u32),
                        if k % 4 == 0 {
                            Syscall::Write
                        } else {
                            Syscall::Read
                        },
                        Micros((k * 10) as u64),
                        Micros(5),
                        i.intern(&format!("/d{}/f{}", k % 5, k % 7)),
                    );
                    if k % 6 == 0 {
                        e = e.failed();
                    } else {
                        e = e.with_size((k * 100) as u64);
                    }
                    e
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    #[test]
    fn scan_matches_filter_events() {
        let log = synthetic(5, 40);
        let pred = parse_expr("class=write size>=400").unwrap();
        let view = scan(&log, &pred);
        let snap = log.snapshot();
        let ctx = EvalCtx {
            snapshot: &snap,
            t0: log.earliest_start().unwrap(),
        };
        let reference = log.filter_events(|m, e| pred.matches(&ctx, m, e));
        assert_eq!(view.to_event_log().cases(), reference.cases());
        assert!(view.event_count() > 0);
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        let log = synthetic(17, 33);
        for src in [
            "true",
            "ok=false",
            "pid=101 or class=write",
            "path~\"/d1/*\"",
        ] {
            let pred = parse_expr(src).unwrap();
            let seq = scan(&log, &pred);
            for threads in [2, 3, 8] {
                let par = scan_par(&log, &pred, threads);
                assert_eq!(seq.slices(), par.slices(), "{src} threads={threads}");
            }
        }
    }

    #[test]
    fn scan_true_is_identity() {
        let log = synthetic(3, 10);
        let view = scan(&log, &Predicate::True);
        assert!(view.is_identity());
        assert_eq!(view.event_count(), log.total_events());
    }

    #[test]
    fn scan_empty_log() {
        let log = EventLog::with_new_interner();
        let view = scan_par(&log, &Predicate::True, 4);
        assert!(view.is_empty());
    }
}
