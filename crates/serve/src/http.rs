//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the live service: request-line + header parsing, `Content-Length`
//! and `chunked` body readers (both expose [`std::io::Read`], so ingest
//! can stream line-at-a-time without buffering the whole body), and a
//! one-shot response writer. Zero dependencies by design; every
//! connection is `Connection: close`, one request per socket.

use std::io::{BufRead, Read, Write};

/// Longest accepted request/header/chunk-size line, in bytes. Longer
/// lines abort the request (they would otherwise buffer unboundedly).
pub const MAX_LINE: usize = 8 * 1024;

/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed request head: the request line plus headers. Bodies are
/// read separately through [`Body`], so huge ingest payloads never
/// live in memory.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the target, query string excluded.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers as `(lower-case name, value)` pairs, in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Parsed `Content-Length`, if present and numeric.
    pub fn content_length(&self) -> Option<u64> {
        self.header("content-length")?.trim().parse().ok()
    }

    /// Whether the body arrives with `Transfer-Encoding: chunked`.
    pub fn is_chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }
}

/// Reads one request head from `reader`. Returns `Ok(None)` when the
/// peer closed the socket before sending anything (a clean no-request
/// connection, e.g. a liveness probe).
pub fn read_request<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Request>> {
    let line = match read_line(reader)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split_ascii_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_ascii_uppercase(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    let path = percent_decode(raw_path, false);
    let query = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| bad("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
    }))
}

/// A request body exposed as a byte stream: either `Content-Length`
/// delimited, `chunked` decoded on the fly, or empty.
pub enum Body<'a, R: BufRead> {
    /// No body (no framing headers on the request).
    Empty,
    /// `Content-Length` framing: exactly `remaining` bytes follow.
    Length {
        /// The connection's buffered reader.
        inner: &'a mut R,
        /// Bytes of body not yet consumed.
        remaining: u64,
    },
    /// `Transfer-Encoding: chunked` framing, decoded incrementally.
    Chunked {
        /// The connection's buffered reader.
        inner: &'a mut R,
        /// Bytes left in the current chunk.
        chunk_remaining: u64,
        /// Whether at least one chunk header was consumed (the CRLF
        /// terminating the previous chunk must be skipped from then on).
        started: bool,
        /// Whether the terminal `0` chunk has been seen.
        done: bool,
    },
}

impl<'a, R: BufRead> Body<'a, R> {
    /// Picks the correct body framing for `req` over `reader`.
    pub fn for_request(req: &Request, reader: &'a mut R) -> Body<'a, R> {
        if req.is_chunked() {
            Body::Chunked {
                inner: reader,
                chunk_remaining: 0,
                started: false,
                done: false,
            }
        } else if let Some(n) = req.content_length() {
            Body::Length {
                inner: reader,
                remaining: n,
            }
        } else {
            Body::Empty
        }
    }
}

impl<R: BufRead> Read for Body<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Body::Empty => Ok(0),
            Body::Length { inner, remaining } => {
                if *remaining == 0 || buf.is_empty() {
                    return Ok(0);
                }
                let want = buf.len().min(*remaining as usize);
                let n = inner.read(&mut buf[..want])?;
                if n == 0 {
                    return Err(bad("eof before content-length satisfied"));
                }
                *remaining -= n as u64;
                Ok(n)
            }
            Body::Chunked {
                inner,
                chunk_remaining,
                started,
                done,
            } => {
                if *done || buf.is_empty() {
                    return Ok(0);
                }
                if *chunk_remaining == 0 {
                    if *started {
                        // CRLF that terminates the previous chunk body.
                        let sep = read_line(&mut *inner)?.ok_or_else(|| bad("eof in chunk"))?;
                        if !sep.is_empty() {
                            return Err(bad("missing chunk terminator"));
                        }
                    }
                    *started = true;
                    let size_line =
                        read_line(&mut *inner)?.ok_or_else(|| bad("eof before chunk size"))?;
                    let hex = size_line.split(';').next().unwrap_or("").trim();
                    let size = u64::from_str_radix(hex, 16).map_err(|_| bad("bad chunk size"))?;
                    if size == 0 {
                        // Trailer section: lines until the blank line.
                        loop {
                            let l =
                                read_line(&mut *inner)?.ok_or_else(|| bad("eof in trailers"))?;
                            if l.is_empty() {
                                break;
                            }
                        }
                        *done = true;
                        return Ok(0);
                    }
                    *chunk_remaining = size;
                }
                let want = buf.len().min(*chunk_remaining as usize);
                let n = inner.read(&mut buf[..want])?;
                if n == 0 {
                    return Err(bad("eof inside chunk"));
                }
                *chunk_remaining -= n as u64;
                Ok(n)
            }
        }
    }
}

/// Writes one complete response and flushes. `extra_headers` are
/// emitted verbatim after the standard set.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(status),
        body.len(),
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Reason phrase for the handful of statuses the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Splits and percent-decodes a query string into `(key, value)` pairs
/// (`+` decodes to space, as form encoding does).
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k, true), percent_decode(v, true))
        })
        .collect()
}

/// Percent-decodes `s`; `plus_is_space` additionally maps `+` to a
/// space (query-string convention). Invalid escapes pass through.
pub fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one CRLF (or bare-LF) terminated line, stripped. `Ok(None)`
/// on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> std::io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(bad("eof mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(bad("line too long"));
                }
            }
        }
    }
}

fn bad(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(raw: &str) -> (Request, BufReader<std::io::Cursor<Vec<u8>>>) {
        let mut r = BufReader::new(std::io::Cursor::new(raw.as_bytes().to_vec()));
        let parsed = read_request(&mut r).unwrap().unwrap();
        (parsed, r)
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let (r, _) = req(
            "GET /query?filter=call%20%3D%3D%20%22read%22&emit=events HTTP/1.1\r\n\
             Host: localhost\r\nX-Thing: 7\r\n\r\n",
        );
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.query_param("filter"), Some("call == \"read\""));
        assert_eq!(r.query_param("emit"), Some("events"));
        assert_eq!(r.header("x-thing"), Some("7"));
        assert_eq!(r.content_length(), None);
        assert!(!r.is_chunked());
    }

    #[test]
    fn plus_decodes_to_space_in_query_only() {
        let (r, _) = req("GET /a+b?x=1+2 HTTP/1.1\r\n\r\n");
        assert_eq!(r.path, "/a+b");
        assert_eq!(r.query_param("x"), Some("1 2"));
    }

    #[test]
    fn content_length_body_reads_exactly() {
        let (r, mut rd) =
            req("POST /ingest/a_h_1.st HTTP/1.1\r\nContent-Length: 5\r\n\r\nhellorest");
        let mut body = Body::for_request(&r, &mut rd);
        let mut s = String::new();
        body.read_to_string(&mut s).unwrap();
        assert_eq!(s, "hello");
    }

    #[test]
    fn chunked_body_decodes_across_chunks() {
        let (r, mut rd) = req(
            "POST /ingest/a_h_1.st HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             4\r\nline\r\n7\r\n one\ntw\r\n1\r\no\r\n0\r\n\r\n",
        );
        let mut body = Body::for_request(&r, &mut rd);
        let mut s = String::new();
        body.read_to_string(&mut s).unwrap();
        assert_eq!(s, "line one\ntwo");
    }

    #[test]
    fn eof_on_empty_connection_is_none() {
        let mut r = BufReader::new(std::io::Cursor::new(Vec::new()));
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn response_writer_emits_frame() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[("x-st-next", "4")], b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("x-st-next: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
