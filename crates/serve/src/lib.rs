//! # st-serve — `stinspectd`: live multi-tenant ingest + query service
//!
//! A long-running daemon over the session API: many producers stream
//! strace output concurrently over TCP/HTTP (thread-per-connection on
//! `std::net` — no new dependencies), the daemon maintains per-stream
//! DFG partials incrementally and merges them on demand, seals
//! completed streams into an on-disk v2 container with fsync + atomic
//! rename, and serves the full st-query filter grammar over HTTP with
//! warm re-queries through the decoded-block cache.
//!
//! ```no_run
//! use st_serve::{Daemon, ServeConfig};
//!
//! let handle = Daemon::start(ServeConfig::new("live.stlog2"))?;
//! println!("listening on http://{}", handle.addr());
//! // ... POST /ingest/<cid>_<host>_<rid>.st, GET /query?filter=... ...
//! handle.shutdown();
//! handle.join()?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Modules:
//!
//! * [`http`] — minimal HTTP/1.1 framing (request head, length/chunked
//!   body streams, response writer);
//! * [`daemon`] — the service itself: accept loop, ingest pipeline,
//!   sealing protocol, query/tail/metrics endpoints.

#![warn(missing_docs)]

pub mod daemon;
pub mod http;

pub use daemon::{Daemon, Handle, ServeConfig};

#[cfg(unix)]
pub use daemon::sig;
