//! The `stinspectd` daemon: concurrent strace ingest over TCP/HTTP,
//! incrementally maintained DFGs, periodic durable sealing into a v2
//! store, and the full st-query filter grammar over HTTP.
//!
//! # Architecture
//!
//! One accept-loop thread plus one thread per connection (`std::net`,
//! no async runtime). Each ingest connection streams its POST body
//! line-at-a-time through [`st_strace::StreamParser`] and folds mapped
//! activities into a per-stream [`DfgAccumulator`]; `GET /dfg` merges
//! the per-stream partials by name-aligned vector addition — the same
//! mechanism `Dfg::par_from_mapped` uses for its worker partials —
//! so the live graph is a merge, never a rescan.
//!
//! Completed streams are pushed into a shared [`StoreBuilder`] and
//! published with [`StoreBuilder::checkpoint`]: fsync + atomic rename,
//! so a crash or SIGTERM loses at most the unsealed tail and never
//! corrupts the container. `GET /query` opens the published container
//! through the session layer (`live:` route) with re-query enabled, so
//! consecutive filters at the same checkpoint generation ride the
//! decoded-block cache instead of rescanning.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /ingest/<cid>_<host>_<rid>.st` | stream one strace trace (chunked or `Content-Length`) |
//! | `GET /query?filter=EXPR&emit=events\|stats\|dfg` | filtered view of the sealed store (CLI-identical bodies) |
//! | `GET /stats?filter=EXPR` | `emit=stats` shorthand |
//! | `GET /dfg` | live DFG over *all* ingested events (sealed + in-flight) |
//! | `GET /tail?since=N&timeout_ms=T` | long-poll the live event feed (TSV rows) |
//! | `GET /metrics` | `PipelineReport` JSON since daemon start |
//! | `GET /status` | one-line liveness summary |
//! | `POST /shutdown` | graceful drain: seal everything, finish the store |

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use st_core::mapping::{CallTopDirs, MapCtx, Mapping};
use st_core::render::{render_dot_plain, render_events_tsv, render_stats_text};
use st_core::DfgAccumulator;
use st_model::{CaseMeta, Event, Interner, InternerSnapshot};
use st_source::{Inspector, Session, TraceSource};
use st_store::{ColumnSet, StoreBuilder};
use st_strace::StreamParser;

use crate::http::{read_request, write_response, Body, Request};

/// Tuning knobs for one daemon instance. Start from
/// [`ServeConfig::new`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Target path of the sealed v2 container.
    pub store_path: PathBuf,
    /// Concurrent-connection cap; connections past it are answered
    /// `503` and counted in `serve.conns_rejected`.
    pub max_conns: usize,
    /// Events per store block (the pushdown pruning granule).
    pub block_events: usize,
    /// Publish a checkpoint after this many completed streams.
    pub checkpoint_cases: usize,
    /// Per-connection ingest cap; a stream exceeding it is answered
    /// `413` and discarded (backpressure, not silent truncation).
    pub max_stream_events: usize,
    /// Ring-buffer capacity of the `/tail` feed, in events.
    pub tail_capacity: usize,
    /// Socket read/write timeout, so dead peers release their slot.
    pub io_timeout_ms: u64,
    /// Whether the accept loop also honors SIGTERM/SIGINT (used by the
    /// CLI; tests drive shutdown through the API or `POST /shutdown`).
    pub handle_signals: bool,
    /// Enable st-obs at startup so `/metrics` has data.
    pub metrics: bool,
}

impl ServeConfig {
    /// Defaults: loopback ephemeral port, 32-connection cap, default
    /// block size, checkpoint after every completed stream.
    pub fn new(store_path: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store_path: store_path.into(),
            max_conns: 32,
            block_events: st_store::DEFAULT_BLOCK_EVENTS,
            checkpoint_cases: 1,
            max_stream_events: 8_000_000,
            tail_capacity: 1024,
            io_timeout_ms: 30_000,
            handle_signals: false,
            metrics: true,
        }
    }
}

/// SIGTERM/SIGINT → shutdown-flag binding, kept minimal: no `libc`
/// crate, just the two constants and glibc's `signal(2)` wrapper.
#[cfg(unix)]
pub mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler; polled by accept loops started with
    /// [`ServeConfig::handle_signals`](super::ServeConfig::handle_signals).
    pub static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGTERM and SIGINT to the [`TRIGGERED`] flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Sealing state: the store builder plus checkpoint bookkeeping.
struct Sealer {
    builder: Option<StoreBuilder>,
    cases_since_checkpoint: usize,
    cases_sealed: u64,
}

/// Live (not-yet-rescanned) DFG state: the merged accumulator of all
/// completed streams plus a registry of per-stream partials still
/// being fed by their connections.
struct LiveDfg {
    sealed: DfgAccumulator,
    open: Vec<Arc<Mutex<DfgAccumulator>>>,
}

/// The `/tail` ring: monotonically numbered rendered event rows.
struct Tail {
    next_seq: u64,
    lines: VecDeque<(u64, String)>,
}

/// One cached warm-query session, valid for a single checkpoint
/// generation (a checkpoint replaces the container inode, so the
/// session's open handles go stale the moment generation bumps).
struct CachedQuery {
    generation: u64,
    session: Session,
}

struct Shared {
    config: ServeConfig,
    interner: Arc<Interner>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conns_rejected: AtomicU64,
    streams_sealed: AtomicU64,
    events_ingested: AtomicU64,
    /// Number of published container images (checkpoints + final seal).
    generation: AtomicU64,
    sealer: Mutex<Sealer>,
    live: Mutex<LiveDfg>,
    tail: Mutex<Tail>,
    tail_cv: Condvar,
    query: Mutex<Option<CachedQuery>>,
    finish_error: Mutex<Option<String>>,
    mark: st_obs::Mark,
}

/// A running daemon. Dropping the handle shuts the daemon down and
/// seals the store; prefer an explicit [`Handle::shutdown`] +
/// [`Handle::join`] to observe errors.
pub struct Handle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Handle {
    /// The bound socket address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Requests shutdown: the accept loop stops taking connections,
    /// drains in-flight ones, then seals and finishes the store.
    /// Returns immediately; [`Handle::join`] observes completion.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.tail_cv.notify_all();
    }

    /// Waits for the daemon to exit (after [`Handle::shutdown`],
    /// `POST /shutdown`, or a handled signal) and surfaces any error
    /// from the final store seal.
    pub fn join(mut self) -> std::io::Result<()> {
        if let Some(h) = self.accept.take() {
            h.join()
                .map_err(|_| std::io::Error::other("accept thread panicked"))?;
        }
        match self.shared.finish_error.lock().expect("lock").take() {
            Some(msg) => Err(std::io::Error::other(msg)),
            None => Ok(()),
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.tail_cv.notify_all();
            let _ = h.join();
        }
    }
}

/// Namespace for starting the service (see [`Daemon::start`]).
pub struct Daemon;

impl Daemon {
    /// Binds `config.addr` and spawns the accept loop. Returns once the
    /// socket is listening; the [`Handle`] controls the daemon's life.
    pub fn start(config: ServeConfig) -> std::io::Result<Handle> {
        if config.metrics {
            st_obs::set_enabled(true);
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let interner = Arc::new(Interner::new());
        let builder =
            StoreBuilder::create_blocked(&config.store_path, interner.clone(), config.block_events)
                .map_err(|e| std::io::Error::other(format!("store builder: {e}")))?;
        let tail_capacity = config.tail_capacity;
        let shared = Arc::new(Shared {
            config,
            interner,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conns_rejected: AtomicU64::new(0),
            streams_sealed: AtomicU64::new(0),
            events_ingested: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            sealer: Mutex::new(Sealer {
                builder: Some(builder),
                cases_since_checkpoint: 0,
                cases_sealed: 0,
            }),
            live: Mutex::new(LiveDfg {
                sealed: DfgAccumulator::new(),
                open: Vec::new(),
            }),
            tail: Mutex::new(Tail {
                next_seq: 0,
                lines: VecDeque::with_capacity(tail_capacity),
            }),
            tail_cv: Condvar::new(),
            query: Mutex::new(None),
            finish_error: Mutex::new(None),
            mark: st_obs::mark(),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("st-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Handle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Decrements the active-connection gauge when a worker exits, even on
/// a panicking request handler.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // The `serve` span stays open for the daemon's lifetime; its
    // context is attached by every connection thread so their spans
    // and counters attribute under `serve/...`.
    let serve_span = st_obs::span("serve");
    let ctx = st_obs::context();
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        #[cfg(unix)]
        if shared.config.handle_signals && sig::TRIGGERED.load(Ordering::SeqCst) {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_conns {
                    shared.conns_rejected.fetch_add(1, Ordering::SeqCst);
                    st_obs::add("serve.conns_rejected", 1);
                    let mut s = stream;
                    let _ = write_response(
                        &mut s,
                        503,
                        "text/plain",
                        &[],
                        b"connection limit reached, retry later\n",
                    );
                    // Drain whatever request bytes the peer already
                    // sent before closing: unread data at close turns
                    // the FIN into an RST and the peer may never see
                    // the 503.
                    let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                    let mut scratch = [0u8; 1024];
                    while matches!(std::io::Read::read(&mut s, &mut scratch), Ok(n) if n > 0) {}
                    continue;
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = shared.clone();
                let conn_ctx = ctx.clone();
                let worker = std::thread::Builder::new()
                    .name("st-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnGuard(conn_shared.clone());
                        let _attached = conn_ctx.attach();
                        handle_connection(&conn_shared, stream);
                    });
                match worker {
                    Ok(h) => workers.push(h),
                    Err(_) => {
                        // Spawn failure: the guard never ran, release
                        // the slot and drop the connection.
                        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle: a quiescent point for this long-lived thread.
                st_obs::flush_current_thread();
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    // Drain in-flight connections, then seal the container for good.
    for h in workers {
        let _ = h.join();
    }
    drop(serve_span);
    let mut sealer = shared.sealer.lock().expect("sealer lock");
    if let Some(builder) = sealer.builder.take() {
        match builder.finish() {
            Ok(_) => {
                shared.generation.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => {
                *shared.finish_error.lock().expect("lock") = Some(format!("store finish: {e}"));
            }
        }
    }
    drop(sealer);
    st_obs::flush_current_thread();
    shared.tail_cv.notify_all();
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _span = st_obs::span("serve.conn");
    let timeout = Duration::from_millis(shared.config.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let req = match read_request(&mut reader) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            respond_text(&mut writer, 400, &format!("bad request: {e}\n"));
            return;
        }
    };
    st_obs::add("serve.requests", 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", path) if path.starts_with("/ingest/") => {
            handle_ingest(shared, &req, &mut reader, &mut writer);
        }
        ("GET", "/query") => {
            let emit = req.query_param("emit").unwrap_or("events");
            respond_query(shared, &req, emit, &mut writer);
        }
        ("GET", "/stats") => respond_query(shared, &req, "stats", &mut writer),
        ("GET", "/dfg") => {
            let body = render_live_dfg(shared);
            let _ = write_response(&mut writer, 200, "text/vnd.graphviz", &[], body.as_bytes());
        }
        ("GET", "/tail") => handle_tail(shared, &req, &mut writer),
        ("GET", "/metrics") => {
            let mut report = st_obs::report_since(&shared.mark);
            report.set_note("service", "stinspectd");
            report.set_note(
                "generation",
                shared.generation.load(Ordering::SeqCst).to_string(),
            );
            let body = report.render_json();
            let _ = write_response(&mut writer, 200, "application/json", &[], body.as_bytes());
        }
        ("GET", "/status") => {
            let body = format!(
                "ok streams_sealed={} events_ingested={} conns_active={} conns_rejected={} generation={}\n",
                shared.streams_sealed.load(Ordering::SeqCst),
                shared.events_ingested.load(Ordering::SeqCst),
                shared.active_conns.load(Ordering::SeqCst),
                shared.conns_rejected.load(Ordering::SeqCst),
                shared.generation.load(Ordering::SeqCst),
            );
            respond_text(&mut writer, 200, &body);
        }
        ("POST", "/shutdown") => {
            respond_text(&mut writer, 200, "shutting down\n");
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.tail_cv.notify_all();
        }
        (_, "/query" | "/stats" | "/dfg" | "/tail" | "/metrics" | "/status" | "/shutdown") => {
            respond_text(&mut writer, 405, "method not allowed\n");
        }
        _ => respond_text(&mut writer, 404, "no such route\n"),
    }
}

fn respond_text(writer: &mut TcpStream, status: u16, body: &str) {
    let _ = write_response(writer, status, "text/plain", &[], body.as_bytes());
}

/// Renders one live event as the same TSV row `--emit events` uses, so
/// `/tail` output lines up with `/query?emit=events` bodies.
fn tail_line(meta: &CaseMeta, e: &Event, snap: &InternerSnapshot) -> String {
    let call = match e.call {
        st_model::Syscall::Other(sym) => snap.resolve(sym).to_string(),
        named => named.static_name().unwrap_or("?").to_string(),
    };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        snap.resolve(meta.cid),
        snap.resolve(meta.host),
        meta.rid,
        e.pid,
        call,
        e.start.format_time_of_day(),
        e.dur.format_duration(),
        snap.resolve(e.path),
        e.size
            .map(|s| s.to_string())
            .unwrap_or_else(|| "-".to_string()),
        e.ok,
    )
}

fn handle_ingest(
    shared: &Arc<Shared>,
    req: &Request,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) {
    let _span = st_obs::span("serve.ingest");
    let name = &req.path["/ingest/".len()..];
    let Some(meta) = CaseMeta::parse_trace_file_name(name, &shared.interner) else {
        respond_text(
            writer,
            400,
            "ingest path must be /ingest/<cid>_<host>_<rid>.st\n",
        );
        return;
    };
    if req.content_length().is_none() && !req.is_chunked() {
        respond_text(
            writer,
            400,
            "ingest needs a Content-Length or chunked body\n",
        );
        return;
    }

    // Register this stream's DFG partial so /dfg can merge it while
    // the connection is still feeding lines.
    let acc = Arc::new(Mutex::new(DfgAccumulator::new()));
    shared
        .live
        .lock()
        .expect("live lock")
        .open
        .push(acc.clone());
    let deregister = |drop_partial: bool| {
        let mut live = shared.live.lock().expect("live lock");
        if !drop_partial {
            let sealed_ref = acc.lock().expect("acc lock");
            live.sealed.merge(&sealed_ref);
        }
        live.open.retain(|a| !Arc::ptr_eq(a, &acc));
    };

    let mapping = CallTopDirs::new(2);
    let mut parser = StreamParser::new(shared.interner.clone());
    let mut body = BufReader::new(Body::for_request(req, reader));
    let mut line = String::new();
    let mut batch_budget = 0usize;
    loop {
        line.clear();
        let n = match body.read_line(&mut line) {
            Ok(n) => n,
            Err(e) => {
                deregister(true);
                respond_text(writer, 400, &format!("ingest read failed: {e}\n"));
                return;
            }
        };
        if n == 0 {
            break;
        }
        parser.feed_line(&line);
        batch_budget += 1;
        if batch_budget >= 256 {
            batch_budget = 0;
            drain_new_events(shared, &meta, &mut parser, &acc, &mapping);
            if parser.events_parsed() > shared.config.max_stream_events {
                deregister(true);
                respond_text(writer, 413, "stream exceeds max_stream_events\n");
                return;
            }
        }
    }
    drain_new_events(shared, &meta, &mut parser, &acc, &mapping);
    let lines_fed = parser.lines_fed();
    let parsed = parser.finish();
    acc.lock().expect("acc lock").close_trace();
    deregister(false);

    // Seal: append the completed, start-sorted case and (by default)
    // publish a checkpoint so the data is durable and queryable.
    let seal_result = {
        let mut sealer = shared.sealer.lock().expect("sealer lock");
        match sealer.builder.as_mut() {
            None => Err("daemon is shutting down".to_string()),
            Some(builder) => builder
                .push_case(meta, &parsed.events)
                .map_err(|e| e.to_string())
                .and_then(|()| {
                    sealer.cases_since_checkpoint += 1;
                    sealer.cases_sealed += 1;
                    if sealer.cases_since_checkpoint >= shared.config.checkpoint_cases {
                        let builder = sealer.builder.as_mut().expect("builder present");
                        builder.checkpoint().map_err(|e| e.to_string())?;
                        sealer.cases_since_checkpoint = 0;
                        shared.generation.fetch_add(1, Ordering::SeqCst);
                        st_obs::add("serve.checkpoints", 1);
                    }
                    Ok(())
                }),
        }
    };
    shared.streams_sealed.fetch_add(1, Ordering::SeqCst);
    st_obs::add("serve.streams_sealed", 1);
    match seal_result {
        Ok(()) => {
            let body = format!(
                "ingested {} events ({} warnings) from {} lines\n",
                parsed.events.len(),
                parsed.warnings.len(),
                lines_fed,
            );
            respond_text(writer, 200, &body);
        }
        Err(e) => respond_text(writer, 500, &format!("seal failed: {e}\n")),
    }
}

/// Folds newly parsed events into the stream's DFG partial and the
/// `/tail` ring. One interner snapshot per batch.
fn drain_new_events(
    shared: &Arc<Shared>,
    meta: &CaseMeta,
    parser: &mut StreamParser,
    acc: &Arc<Mutex<DfgAccumulator>>,
    mapping: &CallTopDirs,
) {
    let snap = shared.interner.snapshot();
    let ctx = MapCtx { snapshot: &snap };
    let mut activity = String::new();
    let mut tail_lines: Vec<String> = Vec::new();
    let mut count = 0u64;
    {
        let mut acc = acc.lock().expect("acc lock");
        for e in parser.poll_events() {
            count += 1;
            if mapping.write_activity(&ctx, meta, e, &mut activity) {
                acc.observe(&activity);
            }
            tail_lines.push(tail_line(meta, e, &snap));
        }
    }
    if count == 0 {
        return;
    }
    shared.events_ingested.fetch_add(count, Ordering::SeqCst);
    st_obs::add("serve.events_ingested", count);
    let mut tail = shared.tail.lock().expect("tail lock");
    for l in tail_lines {
        let seq = tail.next_seq;
        tail.next_seq += 1;
        tail.lines.push_back((seq, l));
        while tail.lines.len() > shared.config.tail_capacity {
            tail.lines.pop_front();
        }
    }
    drop(tail);
    shared.tail_cv.notify_all();
}

/// Merges the sealed accumulator with every in-flight stream partial
/// and renders the result — vector addition, never a rescan.
fn render_live_dfg(shared: &Arc<Shared>) -> String {
    let _span = st_obs::span("serve.dfg");
    let live = shared.live.lock().expect("live lock");
    let mut total = DfgAccumulator::new();
    total.merge(&live.sealed);
    for stream in &live.open {
        total.merge(&stream.lock().expect("acc lock"));
    }
    drop(live);
    render_dot_plain(&total.to_dfg())
}

/// The event columns the query projections read — identical to the
/// CLI's `analysis_columns` so response bodies match byte-for-byte.
fn analysis_columns() -> ColumnSet {
    ColumnSet::ALL.without(ColumnSet::REQUESTED | ColumnSet::OFFSET)
}

fn fresh_session(
    shared: &Arc<Shared>,
    pred: Option<st_query::Predicate>,
) -> Result<Session, (u16, String)> {
    let mut inspector = Inspector::from_source(TraceSource::Live(shared.config.store_path.clone()))
        .map_boxed(Box::new(CallTopDirs::new(2)))
        .pushdown(true)
        .columns(analysis_columns())
        .requery(true);
    if let Some(p) = pred {
        inspector = inspector.filter(p);
    }
    inspector
        .session()
        .map_err(|e| (500, format!("session: {e}\n")))
}

fn respond_query(shared: &Arc<Shared>, req: &Request, emit: &str, writer: &mut TcpStream) {
    let _span = st_obs::span("serve.query");
    st_obs::add("serve.queries", 1);
    let filter = req.query_param("filter");
    let pred = match filter {
        Some(expr) => match st_query::parse_expr(expr) {
            Ok(p) => Some(p),
            Err(e) => {
                respond_text(writer, 400, &format!("filter: {e}\n"));
                return;
            }
        },
        None => None,
    };
    let generation = shared.generation.load(Ordering::SeqCst);
    // Warm path: at an unchanged checkpoint generation, re-filter the
    // cached session through its decoded-block cache instead of
    // reopening and rescanning the container.
    let mut cache = shared.query.lock().expect("query lock");
    let cached = cache.take();
    let session = match (cached, &pred) {
        (Some(c), Some(p)) if c.generation == generation && c.session.can_refilter() => {
            match c.session.refilter(p.clone()) {
                Ok(s) => Ok(s),
                Err(_) => fresh_session(shared, pred.clone()),
            }
        }
        _ => fresh_session(shared, pred.clone()),
    };
    let session = match session {
        Ok(s) => s,
        Err((status, msg)) => {
            drop(cache);
            respond_text(writer, status, &msg);
            return;
        }
    };
    let (body, content_type) = match emit {
        "events" => {
            let snap = session.log().snapshot();
            (
                render_events_tsv(&session.view(), &snap),
                "text/tab-separated-values",
            )
        }
        "stats" => {
            let mapped = session.mapped();
            (render_stats_text(&mapped, &session.view()), "text/plain")
        }
        "dfg" => {
            let mapped = session.mapped();
            (
                st_core::render::render_dfg_dot(&mapped, &session.view()),
                "text/vnd.graphviz",
            )
        }
        other => {
            drop(cache);
            respond_text(
                writer,
                400,
                &format!("emit must be events|stats|dfg, got {other}\n"),
            );
            return;
        }
    };
    *cache = Some(CachedQuery {
        generation,
        session,
    });
    drop(cache);
    let _ = write_response(writer, 200, content_type, &[], body.as_bytes());
}

fn handle_tail(shared: &Arc<Shared>, req: &Request, writer: &mut TcpStream) {
    let _span = st_obs::span("serve.tail");
    let since: u64 = req
        .query_param("since")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let timeout_ms: u64 = req
        .query_param("timeout_ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
        .min(30_000);
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let mut tail = shared.tail.lock().expect("tail lock");
    let (body, next) = loop {
        if tail.next_seq > since {
            let mut body = String::new();
            for (seq, line) in &tail.lines {
                if *seq >= since {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            break (body, tail.next_seq);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break (String::new(), tail.next_seq);
        }
        let now = Instant::now();
        if now >= deadline {
            break (String::new(), tail.next_seq);
        }
        let (guard, _timeout) = shared
            .tail_cv
            .wait_timeout(tail, deadline - now)
            .expect("tail wait");
        tail = guard;
    };
    drop(tail);
    let next = next.to_string();
    let _ = write_response(
        writer,
        200,
        "text/tab-separated-values",
        &[("x-st-next", &next)],
        body.as_bytes(),
    );
}
