//! End-to-end tests of the live service: concurrent ingest over real
//! TCP sockets, query equivalence against the offline pipeline,
//! backpressure, long-poll tail, and graceful shutdown durability.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use st_serve::{Daemon, ServeConfig};

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("st-serve-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A synthetic strace stream in the Fig. 2a grammar: `read`s over a
/// couple of per-stream directories plus one `write`, with
/// stream-specific paths so the merged DFG is non-trivial.
fn stream_text(i: usize, lines: usize) -> String {
    let pid = 9000 + i;
    let mut out = String::new();
    for j in 0..lines {
        let ts = format!("09:00:{:02}.{:06}", 10 + j % 49, (j * 137) % 1_000_000);
        if j % 5 == 4 {
            out.push_str(&format!(
                "{pid}  {ts} write(1</data/out/log{i}>, \"...\", 50) = 50 <0.000111>\n"
            ));
        } else {
            out.push_str(&format!(
                "{pid}  {ts} read(3</data/s{}/f{}>, \"...\", 832) = 832 <0.000203>\n",
                i % 3,
                j % 4,
            ));
        }
    }
    out
}

/// One-shot HTTP exchange: writes `raw`, reads to EOF, splits the
/// response into (status, headers, body).
fn http(addr: SocketAddr, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(raw).unwrap();
    s.flush().unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let split = resp
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body split");
    let head = String::from_utf8_lossy(&resp[..split]).into_owned();
    let body = resp[split + 4..].to_vec();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, Vec<u8>) {
    http(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
    )
}

/// Streams `text` as a chunked POST in small multi-line chunks, the
/// way a producer tailing strace output would.
fn ingest_chunked(addr: SocketAddr, name: &str, text: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "POST /ingest/{name} HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    .unwrap();
    for chunk in text.as_bytes().chunks(200) {
        write!(s, "{:x}\r\n", chunk.len()).unwrap();
        s.write_all(chunk).unwrap();
        s.write_all(b"\r\n").unwrap();
        s.flush().unwrap();
    }
    s.write_all(b"0\r\n\r\n").unwrap();
    s.flush().unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let split = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    let status: u16 = String::from_utf8_lossy(&resp[..split])
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    (status, resp[split + 4..].to_vec())
}

/// Minimal target encoding for filter expressions.
fn encode(s: &str) -> String {
    s.replace('%', "%25")
        .replace(' ', "%20")
        .replace('"', "%22")
}

/// The offline `stinspect query --emit events` body over `input`,
/// built with the exact CLI wiring (topdirs:2 map, pushdown, analysis
/// columns) and the shared renderers.
fn offline_query_body(input: &str, filter: Option<&str>, emit: &str) -> String {
    let mut inspector = st_source::Inspector::open(input)
        .unwrap()
        .map_boxed(Box::new(st_core::CallTopDirs::new(2)))
        .pushdown(true)
        .columns(
            st_store::ColumnSet::ALL
                .without(st_store::ColumnSet::REQUESTED | st_store::ColumnSet::OFFSET),
        );
    if let Some(expr) = filter {
        inspector = inspector.filter(st_query::parse_expr(expr).unwrap());
    }
    let session = inspector.session().unwrap();
    match emit {
        "events" => {
            let snap = session.log().snapshot();
            st_core::render::render_events_tsv(&session.view(), &snap)
        }
        "stats" => st_core::render::render_stats_text(&session.mapped(), &session.view()),
        "dfg" => st_core::render::render_dfg_dot(&session.mapped(), &session.view()),
        other => panic!("bad emit {other}"),
    }
}

#[test]
fn concurrent_ingest_matches_offline_pipeline() {
    let dir = tempdir("e2e");
    let store = dir.join("live.stlog2");
    let mut config = ServeConfig::new(&store);
    config.block_events = 16; // several blocks per case, so pushdown has granules
    let handle = Daemon::start(config).unwrap();
    let addr = handle.addr();

    // 8 producers ingest concurrently over their own connections.
    let n = 8;
    let texts: Vec<String> = (0..n).map(|i| stream_text(i, 60)).collect();
    let mut clients = Vec::new();
    for (i, text) in texts.iter().enumerate() {
        let text = text.clone();
        clients.push(std::thread::spawn(move || {
            let name = format!("c{i}_host{}_{}.st", i % 2, 9000 + i);
            ingest_chunked(addr, &name, &text)
        }));
    }
    for c in clients {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    }

    // The sealed store's event set is interleaving-independent: the
    // TSV rows (every column resolved) equal the union of offline
    // parses of the same inputs, regardless of arrival order.
    let (status, _, body) = get(addr, "/query?emit=events");
    assert_eq!(status, 200);
    let served = String::from_utf8(body).unwrap();
    let mut served_rows: Vec<&str> = served.lines().skip(1).collect();
    served_rows.sort_unstable();

    let interner = st_model::Interner::new();
    let mut offline_rows: Vec<String> = Vec::new();
    for (i, text) in texts.iter().enumerate() {
        let name = format!("c{i}_host{}_{}.st", i % 2, 9000 + i);
        let meta = st_model::CaseMeta::parse_trace_file_name(&name, &interner).unwrap();
        let parsed = st_strace::parse_str(text, &interner);
        assert!(parsed.warnings.is_empty());
        let snap = interner.snapshot();
        for e in &parsed.events {
            let call = match e.call {
                st_model::Syscall::Other(sym) => snap.resolve(sym).to_string(),
                named => named.static_name().unwrap_or("?").to_string(),
            };
            offline_rows.push(format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                snap.resolve(meta.cid),
                snap.resolve(meta.host),
                meta.rid,
                e.pid,
                call,
                e.start.format_time_of_day(),
                e.dur.format_duration(),
                snap.resolve(e.path),
                e.size.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                e.ok,
            ));
        }
    }
    offline_rows.sort_unstable();
    assert_eq!(served_rows.len(), offline_rows.len());
    assert_eq!(
        served_rows,
        offline_rows.iter().map(String::as_str).collect::<Vec<_>>()
    );

    // HTTP bodies are byte-identical to the offline CLI pipeline on
    // the same container + filter, for every emit mode. Two queries at
    // the same generation also exercise the warm refilter path.
    let store_spec = store.display().to_string();
    let filter = r#"call=read path~"/data/*""#;
    for emit in ["events", "stats", "dfg"] {
        let target = format!("/query?filter={}&emit={emit}", encode(filter));
        let (status, _, body) = get(addr, &target);
        assert_eq!(status, 200);
        let offline = offline_query_body(&store_spec, Some(filter), emit);
        assert_eq!(String::from_utf8(body).unwrap(), offline, "emit={emit}");
    }

    // The live DFG endpoint merges per-stream partials; every stream
    // has completed, so it is a well-formed graph mentioning both the
    // read and write activity families.
    let (status, _, dot) = get(addr, "/dfg");
    assert_eq!(status, 200);
    let dot = String::from_utf8(dot).unwrap();
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(dot.contains("read:/data"), "{dot}");
    assert!(dot.contains("write:/data"), "{dot}");

    let (status, _, _) = http(addr, b"POST /shutdown HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_cap_connections_are_rejected_with_503() {
    let dir = tempdir("cap");
    let mut config = ServeConfig::new(dir.join("live.stlog2"));
    config.max_conns = 2;
    let handle = Daemon::start(config).unwrap();
    let addr = handle.addr();

    // Two silent connections occupy both slots...
    let hold1 = TcpStream::connect(addr).unwrap();
    let hold2 = TcpStream::connect(addr).unwrap();
    // ...give the accept loop a moment to take them...
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let status = loop {
        let (status, _, _) = get(addr, "/status");
        if status == 503 || std::time::Instant::now() > deadline {
            break status;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(status, 503, "third connection must be turned away");

    drop(hold1);
    drop(hold2);
    // Slots free up again; the rejection was counted.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let body = loop {
        let (status, _, body) = get(addr, "/status");
        if status == 200 {
            break String::from_utf8(body).unwrap();
        }
        assert!(std::time::Instant::now() < deadline, "slots never freed");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(
        body.contains("conns_rejected=") && !body.contains("conns_rejected=0"),
        "{body}"
    );

    handle.shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_leaves_fsck_clean_store() {
    let dir = tempdir("shutdown");
    let store = dir.join("live.stlog2");
    let handle = Daemon::start(ServeConfig::new(&store)).unwrap();
    let addr = handle.addr();

    for i in 0..3 {
        let (status, _) = ingest_chunked(
            addr,
            &format!("g{i}_hostA_{}.st", 7000 + i),
            &stream_text(i, 25),
        );
        assert_eq!(status, 200);
    }
    handle.shutdown();
    handle.join().unwrap();

    // The finished container is clean end to end and holds every case.
    let salvaged = st_store::open_salvage_seek(&store).unwrap();
    assert!(salvaged.report.is_clean(), "{:?}", salvaged.report);
    let reader = st_store::StoreReader::open(&store).unwrap();
    assert_eq!(reader.read().unwrap().cases().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tail_long_polls_and_metrics_report() {
    let dir = tempdir("tail");
    let handle = Daemon::start(ServeConfig::new(dir.join("live.stlog2"))).unwrap();
    let addr = handle.addr();

    // Empty feed: the poll waits for the timeout, then returns empty
    // with the cursor for the next call.
    let (status, head, body) = get(addr, "/tail?since=0&timeout_ms=50");
    assert_eq!(status, 200);
    assert!(body.is_empty());
    assert!(head.to_ascii_lowercase().contains("x-st-next: 0"), "{head}");

    let (status, _) = ingest_chunked(addr, "t_hostB_4242.st", &stream_text(0, 10));
    assert_eq!(status, 200);

    let (status, head, body) = get(addr, "/tail?since=0&timeout_ms=2000");
    assert_eq!(status, 200);
    let feed = String::from_utf8(body).unwrap();
    assert_eq!(feed.lines().count(), 10, "{feed}");
    assert!(
        feed.lines()
            .all(|l| l.starts_with("t\thostB\t4242\t9000\t")),
        "{feed}"
    );
    assert!(
        head.to_ascii_lowercase().contains("x-st-next: 10"),
        "{head}"
    );

    // Resuming past the end returns an empty page, not a replay.
    let (_, _, body) = get(addr, "/tail?since=10&timeout_ms=50");
    assert!(body.is_empty());

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let json = String::from_utf8(body).unwrap();
    assert!(json.contains("st-obs/1"), "{json}");
    assert!(json.contains("serve.events_ingested"), "{json}");
    assert!(json.contains("stinspectd"), "{json}");

    handle.shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
