//! `stinspect` — command-line front end for the DFG synthesis pipeline.
//!
//! ```text
//! stinspect parse <trace-dir> -o <log.stlog> [--sequential] [--strict-names]
//!               [--threads N] [--streaming]
//! stinspect dfg <log.stlog> [--filter SUBSTR] [--map MAP] [--color MODE]
//!               [--ranks] [-o out.dot] [--summary]
//! stinspect stats <log.stlog> [--filter SUBSTR] [--map MAP]
//! stinspect timeline <log.stlog> <activity> [--map MAP] [--width N]
//! stinspect simulate <ls|ior-ssf-fpp|ior-mpiio> --out <dir> [--paper] [--emit-strace]
//! stinspect diff <a> <b> [--cid-a CID] [--cid-b CID] [--map MAP] [--filter SUBSTR]
//!               [-o out.dot] [--dot]
//! ```
//!
//! `diff` inputs `<a>`/`<b>` are any of: an `st-store` container file, a
//! directory of strace files (loaded through the normal loader), or a
//! simulate spec `sim:<workload>[:paper]` (the workloads `simulate`
//! accepts, generated in memory).
//!
//! `MAP` is one of `topdirs[:K]` (Eq. 4, default K=2), `suffix:PREFIX`
//! (Fig. 4 naming), `site` (the experiments' `$SCRATCH`/`$SOFTWARE`
//! abstraction, default site rules), or `call` (syscall name only).
//! `MODE` is `load` (default), `bytes`, or `partition:CID` (green = the
//! given command id, red = everything else).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use st_core::mapping::MapCtx;
use st_core::prelude::*;
use st_model::{CaseMeta, Event, EventLog, Interner, Syscall};
use st_sim::{SimConfig, Simulation, TraceFilter};
use st_store::{write_store, StoreReader};
use st_strace::{load_dir, LoadOptions};

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// (`stinspect ... | head`).
fn emit(text: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    if out.write_all(text.as_bytes()).is_err() || out.flush().is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "parse" => cmd_parse(rest),
        "dfg" => cmd_dfg(rest),
        "stats" => cmd_stats(rest),
        "timeline" => cmd_timeline(rest),
        "simulate" => cmd_simulate(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stinspect: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
stinspect — inspection of I/O operations from system call traces (DFG synthesis)

commands:
  parse <trace-dir> -o <log.stlog>   parse strace files into a container
      [--sequential] [--strict-names] [--threads N] [--streaming]
  dfg <log.stlog>                    synthesize and render the DFG
      [--filter SUBSTR] [--map topdirs[:K]|suffix:PREFIX|site|call]
      [--color load|bytes|partition:CID] [--ranks] [--min-edge N]
      [-o out.dot] [--summary]
  stats <log.stlog>                  print per-activity statistics
      [--filter SUBSTR] [--map MAP] [--csv]
  timeline <log.stlog> <activity>    per-case interval plot (Fig. 5)
      [--map MAP] [--width N]
  simulate <ls|ior-ssf-fpp|ior-mpiio> --out <dir>
      [--paper] [--emit-strace]      generate a workload's event log
  diff <a> <b>                       compare two runs' DFGs
      [--cid-a CID] [--cid-b CID] [--map MAP] [--filter SUBSTR]
      [-o out.dot] [--dot]
      <a>/<b>: store file | strace dir | sim:<workload>[:paper]";

/// Simple flag cursor over the argument list.
struct Args<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(tokens: &'a [String]) -> Self {
        Args { tokens, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let tok = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(tok)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} requires a value"))
    }
}

/// A mapping selected on the command line.
enum MapChoice {
    TopDirs(usize),
    Suffix(String),
    Site,
    Call,
}

impl MapChoice {
    fn parse(spec: &str) -> Result<MapChoice, String> {
        if spec == "call" {
            return Ok(MapChoice::Call);
        }
        if spec == "site" {
            return Ok(MapChoice::Site);
        }
        if let Some(rest) = spec.strip_prefix("suffix:") {
            return Ok(MapChoice::Suffix(rest.to_string()));
        }
        if spec == "topdirs" {
            return Ok(MapChoice::TopDirs(2));
        }
        if let Some(rest) = spec.strip_prefix("topdirs:") {
            let k: usize = rest.parse().map_err(|_| format!("bad depth {rest:?}"))?;
            return Ok(MapChoice::TopDirs(k));
        }
        Err(format!("unknown mapping {spec:?}"))
    }

    fn build(&self) -> Box<dyn Mapping + Send + Sync> {
        match self {
            MapChoice::TopDirs(k) => Box::new(CallTopDirs::new(*k)),
            MapChoice::Suffix(prefix) => Box::new(PathFilter::new(
                prefix.clone(),
                PathSuffix::new(prefix.clone()),
            )),
            MapChoice::Site => {
                let paths = st_sim::config::PathScheme::default();
                Box::new(SiteMap::new([
                    (paths.scratch, "$SCRATCH".to_string()),
                    (paths.software, "$SOFTWARE".to_string()),
                    (paths.home, "$HOME".to_string()),
                    (paths.shm, "Node Local".to_string()),
                    ("/tmp".to_string(), "Node Local".to_string()),
                ]))
            }
            MapChoice::Call => Box::new(CallOnly),
        }
    }
}

fn cmd_parse(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = LoadOptions::default();
    while let Some(tok) = args.next() {
        match tok {
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--sequential" => opts.parallel = false,
            "--strict-names" => opts.strict_names = true,
            "--streaming" => opts.streaming = true,
            "--threads" => {
                opts.threads = args
                    .value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => dir = Some(PathBuf::from(path)),
        }
    }
    let dir = dir.ok_or("parse: missing <trace-dir>")?;
    let out = out.ok_or("parse: missing -o <log.stlog>")?;
    let interner = Interner::new_shared();
    let result = load_dir(&dir, Arc::clone(&interner), &opts).map_err(|e| e.to_string())?;
    for (file, warning) in &result.warnings {
        eprintln!("warning: {}: {warning}", file.display());
    }
    write_store(&result.log, &out).map_err(|e| e.to_string())?;
    println!(
        "parsed {} cases / {} events into {}",
        result.log.case_count(),
        result.log.total_events(),
        out.display()
    );
    Ok(())
}

fn open_log(path: &Path, filter: Option<&str>) -> Result<EventLog, String> {
    let reader = StoreReader::open(path).map_err(|e| e.to_string())?;
    match filter {
        Some(needle) => reader.read_filtered(needle).map_err(|e| e.to_string()),
        None => reader.read().map_err(|e| e.to_string()),
    }
}

struct DfgArgs {
    store: PathBuf,
    filter: Option<String>,
    map: MapChoice,
    color: String,
    ranks: bool,
    out: Option<PathBuf>,
    summary: bool,
    csv: bool,
    min_edge: u64,
    width: usize,
    activity: Option<String>,
}

fn parse_dfg_args(tokens: &[String], positional: usize) -> Result<DfgArgs, String> {
    let mut args = Args::new(tokens);
    let mut parsed = DfgArgs {
        store: PathBuf::new(),
        filter: None,
        map: MapChoice::TopDirs(2),
        color: "load".to_string(),
        ranks: false,
        out: None,
        summary: false,
        csv: false,
        min_edge: 0,
        width: 72,
        activity: None,
    };
    let mut positionals: Vec<String> = Vec::new();
    while let Some(tok) = args.next() {
        match tok {
            "--filter" => parsed.filter = Some(args.value("--filter")?.to_string()),
            "--map" => parsed.map = MapChoice::parse(args.value("--map")?)?,
            "--color" => parsed.color = args.value("--color")?.to_string(),
            "--ranks" => parsed.ranks = true,
            "--summary" => parsed.summary = true,
            "--csv" => parsed.csv = true,
            "--min-edge" => {
                parsed.min_edge = args
                    .value("--min-edge")?
                    .parse()
                    .map_err(|_| "bad --min-edge".to_string())?
            }
            "--width" => {
                parsed.width = args
                    .value("--width")?
                    .parse()
                    .map_err(|_| "bad --width".to_string())?
            }
            "-o" => parsed.out = Some(PathBuf::from(args.value("-o")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional_tok => positionals.push(positional_tok.to_string()),
        }
    }
    if positionals.len() != positional {
        return Err(format!("expected {positional} positional argument(s)"));
    }
    parsed.store = PathBuf::from(&positionals[0]);
    if positional > 1 {
        parsed.activity = Some(positionals[1].clone());
    }
    Ok(parsed)
}

fn cmd_dfg(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let mut dfg = Dfg::from_mapped(&mapped);
    if parsed.min_edge > 1 {
        dfg = dfg.filter_edges(parsed.min_edge);
    }
    let stats = IoStatistics::compute(&mapped);
    let options = st_core::render::RenderOptions {
        show_ranks: parsed.ranks,
        ..Default::default()
    };

    let dot = match parsed.color.as_str() {
        "load" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_load(&stats),
            &options,
        ),
        "bytes" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_bytes(&stats),
            &options,
        ),
        other => {
            let Some(cid) = other.strip_prefix("partition:") else {
                return Err(format!("unknown color mode {other:?}"));
            };
            let (green_log, red_log) = log.partition_by_cid(cid);
            if green_log.is_empty() {
                return Err(format!("no cases with cid {cid:?} for partition coloring"));
            }
            let dfg_g = Dfg::from_mapped(&MappedLog::new(&green_log, mapping.as_ref()));
            let dfg_r = Dfg::from_mapped(&MappedLog::new(&red_log, mapping.as_ref()));
            st_core::render::render_dot(
                &dfg,
                Some(&stats),
                &PartitionColoring::new(&dfg_g, &dfg_r),
                &options,
            )
        }
    };

    match &parsed.out {
        Some(path) => {
            std::fs::write(path, &dot).map_err(|e| e.to_string())?;
            println!("wrote {}", path.display());
        }
        None => emit(&dot),
    }
    if parsed.summary {
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_stats(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let dfg = Dfg::from_mapped(&mapped);
    let stats = IoStatistics::compute(&mapped);
    if parsed.csv {
        // Clean machine-readable output; the human header goes to stderr.
        eprintln!(
            "{} cases, {} events, {} mapped, {} activities",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        );
        emit(&stats.to_csv());
    } else {
        emit(&format!(
            "{} cases, {} events, {} mapped, {} activities\n",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        ));
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_timeline(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 2)?;
    let activity = parsed.activity.as_deref().expect("two positionals");
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let timeline = Timeline::for_activity(&mapped, activity)
        .ok_or_else(|| format!("no events map to activity {activity:?}"))?;
    emit(&timeline.render_ascii(parsed.width));
    Ok(())
}

/// Resolves one `diff` input: a `sim:<workload>[:paper]` spec, a
/// directory of strace files, or an `st-store` container file. Store
/// files apply `filter` at read time (like the other subcommands);
/// simulated and freshly parsed logs filter after materialization.
fn load_diff_input(spec: &str, filter: Option<&str>) -> Result<EventLog, String> {
    let narrow = |log: EventLog| match filter {
        Some(needle) => log.filter_path_contains(needle),
        None => log,
    };
    if let Some(rest) = spec.strip_prefix("sim:") {
        let (name, paper) = match rest.strip_suffix(":paper") {
            Some(name) => (name, true),
            None => (rest, false),
        };
        return build_workload_log(name, paper).map(narrow);
    }
    let path = Path::new(spec);
    if path.is_dir() {
        let interner = Interner::new_shared();
        let result = load_dir(path, Arc::clone(&interner), &LoadOptions::default())
            .map_err(|e| format!("{spec}: {e}"))?;
        for (file, warning) in &result.warnings {
            eprintln!("warning: {}: {warning}", file.display());
        }
        return Ok(narrow(result.log));
    }
    open_log(path, filter).map_err(|e| format!("{spec}: {e}"))
}

fn cmd_diff(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut inputs: Vec<String> = Vec::new();
    let mut cid_a: Option<String> = None;
    let mut cid_b: Option<String> = None;
    let mut map = MapChoice::TopDirs(2);
    let mut filter: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut dot_stdout = false;
    while let Some(tok) = args.next() {
        match tok {
            "--cid-a" => cid_a = Some(args.value("--cid-a")?.to_string()),
            "--cid-b" => cid_b = Some(args.value("--cid-b")?.to_string()),
            "--map" => map = MapChoice::parse(args.value("--map")?)?,
            "--filter" => filter = Some(args.value("--filter")?.to_string()),
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--dot" => dot_stdout = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            input => inputs.push(input.to_string()),
        }
    }
    let [input_a, input_b] = inputs.as_slice() else {
        return Err("diff: expected exactly two inputs <a> <b>".to_string());
    };

    // Load both sides, then narrow each to its cid subset if requested
    // (e.g. `--cid-a s --cid-b f` splits one ior-ssf-fpp log into the
    // SSF and FPP runs).
    let select = |log: EventLog, cid: &Option<String>, side: &str| -> Result<EventLog, String> {
        let Some(cid) = cid else { return Ok(log) };
        let (selected, _rest) = log.partition_by_cid(cid);
        if selected.is_empty() {
            return Err(format!("no cases with cid {cid:?} in input {side}"));
        }
        Ok(selected)
    };
    let log_a = select(load_diff_input(input_a, filter.as_deref())?, &cid_a, "A")?;
    let log_b = select(load_diff_input(input_b, filter.as_deref())?, &cid_b, "B")?;

    let mapping = map.build();
    let dfg_a = Dfg::from_mapped(&MappedLog::new(&log_a, mapping.as_ref()));
    let dfg_b = Dfg::from_mapped(&MappedLog::new(&log_b, mapping.as_ref()));
    let diff = st_core::diff::diff(&dfg_a, &dfg_b);

    let options = st_core::render::RenderOptions {
        graph_name: "DFG diff".to_string(),
        show_stats: false,
        ..Default::default()
    };
    let dot = (out.is_some() || dot_stdout)
        .then(|| st_core::render::render_diff_dot(&diff, &options));
    if let (Some(path), Some(dot)) = (&out, &dot) {
        std::fs::write(path, dot).map_err(|e| e.to_string())?;
        eprintln!("wrote {}", path.display());
    }
    if dot_stdout {
        emit(dot.as_deref().unwrap_or_default());
    } else {
        emit(&st_core::render::render_diff_report(&diff));
    }
    Ok(())
}

fn cmd_simulate(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut workload: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut paper = false;
    let mut emit_strace = false;
    while let Some(tok) = args.next() {
        match tok {
            "--out" => out = Some(PathBuf::from(args.value("--out")?)),
            "--paper" => paper = true,
            "--emit-strace" => emit_strace = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            name => workload = Some(name.to_string()),
        }
    }
    let workload = workload.ok_or("simulate: missing workload name")?;
    let out = out.ok_or("simulate: missing --out <dir>")?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let log = build_workload_log(&workload, paper)?;
    let store_path = out.join(format!("{workload}.stlog"));
    write_store(&log, &store_path).map_err(|e| e.to_string())?;
    println!(
        "simulated {} cases / {} events -> {}",
        log.case_count(),
        log.total_events(),
        store_path.display()
    );
    if emit_strace {
        let trace_dir = out.join(format!("{workload}-traces"));
        let files = st_sim::emit_strace_dir(&log, &trace_dir).map_err(|e| e.to_string())?;
        println!("emitted {} strace files into {}", files.len(), trace_dir.display());
    }
    Ok(())
}

fn build_workload_log(workload: &str, paper: bool) -> Result<EventLog, String> {
    use st_ior::workload::StartupProfile;
    use st_ior::{run_ior, Api, IorOptions};
    match workload {
        "ls" => {
            let filter = TraceFilter::only([Syscall::Read, Syscall::Write]);
            let mut log = EventLog::with_new_interner();
            let sim = Simulation::new(SimConfig::small(3));
            sim.run("a", vec![st_sim::workloads::ls_ops(); 3], &filter, &mut log);
            let sim_b = Simulation::new(SimConfig { base_rid: 9115, ..SimConfig::small(3) });
            sim_b.run("b", vec![st_sim::workloads::ls_l_ops(); 3], &filter, &mut log);
            Ok(log)
        }
        "ior-ssf-fpp" => {
            let config = scale_config(paper);
            let mut log = EventLog::with_new_interner();
            let profile = StartupProfile::default();
            let filter = TraceFilter::experiment_a();
            let ssf = IorOptions::paper_experiment(
                false,
                Api::Posix,
                &format!("{}/ssf/test", config.paths.scratch),
            );
            run_ior("s", &ssf, &profile, &config, &filter, &mut log);
            let fpp = IorOptions::paper_experiment(
                true,
                Api::Posix,
                &format!("{}/fpp/test", config.paths.scratch),
            );
            run_ior("f", &fpp, &profile, &config, &filter, &mut log);
            Ok(log)
        }
        "ior-mpiio" => {
            let config = scale_config(paper);
            let mut log = EventLog::with_new_interner();
            let profile = StartupProfile::default();
            let filter = TraceFilter::experiment_b();
            let test_file = format!("{}/ssf/test", config.paths.scratch);
            run_ior(
                "g",
                &IorOptions::paper_experiment(false, Api::Mpiio, &test_file),
                &profile,
                &config,
                &filter,
                &mut log,
            );
            run_ior(
                "r",
                &IorOptions::paper_experiment(false, Api::Posix, &test_file),
                &profile,
                &config,
                &filter,
                &mut log,
            );
            Ok(log)
        }
        other => Err(format!(
            "unknown workload {other:?} (ls, ior-ssf-fpp, ior-mpiio)"
        )),
    }
}

fn scale_config(paper: bool) -> SimConfig {
    if paper {
        SimConfig::default()
    } else {
        SimConfig {
            hosts: vec!["jwc01".to_string(), "jwc02".to_string()],
            cores_per_host: 4,
            ..Default::default()
        }
    }
}

// Used by the `--map` machinery above; kept here so the CLI compiles the
// same mapping set the library exposes.
#[allow(dead_code)]
fn skip_openat_site_mapping(site: SiteMap) -> impl Mapping {
    FnMapping(move |ctx: &MapCtx<'_>, meta: &CaseMeta, e: &Event| {
        if matches!(e.call, Syscall::Openat | Syscall::Open) {
            return None;
        }
        site.activity_name(ctx, meta, e)
    })
}
