//! `stinspect` — command-line front end for the DFG synthesis pipeline.
//!
//! ```text
//! stinspect parse <trace-dir> -o <log.stlog> [--sequential] [--strict-names]
//!               [--threads N] [--streaming]
//! stinspect dfg <log.stlog> [--filter SUBSTR] [--map MAP] [--color MODE]
//!               [--ranks] [-o out.dot] [--summary]
//! stinspect stats <log.stlog> [--filter SUBSTR] [--map MAP]
//! stinspect timeline <log.stlog> <activity> [--map MAP] [--width N]
//! stinspect simulate <ls|ior-ssf-fpp|ior-mpiio|ssf|fpp> --out <dir> [--paper] [--emit-strace]
//! stinspect diff <a> <b> [--cid-a CID] [--cid-b CID] [--map MAP] [--filter SUBSTR]
//!               [-o out.dot] [--dot]
//! stinspect query <input> [--filter EXPR] [--group-by file|pid|cid|host]
//!               [--emit dfg|stats|events|store] [--map MAP] [--threads N]
//!               [--no-pushdown] [-o PATH]
//! ```
//!
//! `diff` and `query` inputs are any of: an `st-store` container file, a
//! directory of strace files (loaded through the normal loader), or a
//! simulate spec `sim:<workload>[:paper]` (the workloads `simulate`
//! accepts, generated in memory).
//!
//! `EXPR` is the `st-query` filter syntax, e.g. `pid=42 path~"*.h5"
//! t=[1.2s,3s) ok=false` or `class=write and size>=1m` — see
//! DESIGN.md §7 for the grammar. On STLOG v2 store inputs the filter is
//! pushed down into the reader (zone-mapped blocks that cannot match
//! are never decoded; a `pushdown:` summary line reports what was
//! skipped); `--no-pushdown` forces the full-load scan path. Time windows with unit suffixes are
//! offsets from the log's first event (`t=[0s,2s)` = the first two
//! seconds of the run); `HH:MM:SS[.ffffff]` endpoints are absolute
//! times of day. `--group-by` explodes the slice into per-file /
//! per-pid / per-cid / per-host DFG families.
//!
//! `MAP` is one of `topdirs[:K]` (Eq. 4, default K=2), `suffix:PREFIX`
//! (Fig. 4 naming), `site` (the experiments' `$SCRATCH`/`$SOFTWARE`
//! abstraction, default site rules), or `call` (syscall name only).
//! `MODE` is `load` (default), `bytes`, or `partition:CID` (green = the
//! given command id, red = everything else).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use st_core::mapping::MapCtx;
use st_core::prelude::*;
use st_model::{CaseMeta, Event, EventLog, Interner, Syscall};
use st_sim::{SimConfig, Simulation, TraceFilter};
use st_store::{write_store, StoreReader};
use st_strace::{load_dir, LoadOptions};

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// (`stinspect ... | head`).
fn emit(text: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    if out.write_all(text.as_bytes()).is_err() || out.flush().is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "parse" => cmd_parse(rest),
        "dfg" => cmd_dfg(rest),
        "stats" => cmd_stats(rest),
        "timeline" => cmd_timeline(rest),
        "simulate" => cmd_simulate(rest),
        "diff" => cmd_diff(rest),
        "query" => cmd_query(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stinspect: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
stinspect — inspection of I/O operations from system call traces (DFG synthesis)

commands:
  parse <trace-dir> -o <log.stlog>   parse strace files into a container
      [--sequential] [--strict-names] [--threads N] [--streaming]
  dfg <log.stlog>                    synthesize and render the DFG
      [--filter SUBSTR] [--map topdirs[:K]|suffix:PREFIX|site|call]
      [--color load|bytes|partition:CID] [--ranks] [--min-edge N]
      [-o out.dot] [--summary]
  stats <log.stlog>                  print per-activity statistics
      [--filter SUBSTR] [--map MAP] [--csv]
  timeline <log.stlog> <activity>    per-case interval plot (Fig. 5)
      [--map MAP] [--width N]
  simulate <ls|ior-ssf-fpp|ior-mpiio|ssf|fpp> --out <dir>
      [--paper] [--emit-strace]      generate a workload's event log
  diff <a> <b>                       compare two runs' DFGs
      [--cid-a CID] [--cid-b CID] [--map MAP] [--filter SUBSTR]
      [-o out.dot] [--dot] [--no-stats]
      <a>/<b>: store file | strace dir | sim:<workload>[:paper]
  query <input>                      filter, slice and project the log
      [--filter EXPR] [--group-by file|pid|cid|host]
      [--emit dfg|stats|events|store] [--map MAP] [--threads N]
      [--no-pushdown] [-o PATH]
      EXPR e.g.: pid=42 path~\"*.h5\" t=[1.2s,3s) ok=false
      <input>: store file | strace dir | sim:<workload>[:paper]
      v2 store inputs push the filter into the reader (zone-map block
      pruning); --no-pushdown forces the full-load scan";

/// Simple flag cursor over the argument list.
struct Args<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(tokens: &'a [String]) -> Self {
        Args { tokens, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let tok = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(tok)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} requires a value"))
    }
}

/// A mapping selected on the command line.
enum MapChoice {
    TopDirs(usize),
    Suffix(String),
    Site,
    Call,
}

impl MapChoice {
    fn parse(spec: &str) -> Result<MapChoice, String> {
        if spec == "call" {
            return Ok(MapChoice::Call);
        }
        if spec == "site" {
            return Ok(MapChoice::Site);
        }
        if let Some(rest) = spec.strip_prefix("suffix:") {
            return Ok(MapChoice::Suffix(rest.to_string()));
        }
        if spec == "topdirs" {
            return Ok(MapChoice::TopDirs(2));
        }
        if let Some(rest) = spec.strip_prefix("topdirs:") {
            let k: usize = rest.parse().map_err(|_| format!("bad depth {rest:?}"))?;
            return Ok(MapChoice::TopDirs(k));
        }
        Err(format!("unknown mapping {spec:?}"))
    }

    fn build(&self) -> Box<dyn Mapping + Send + Sync> {
        match self {
            MapChoice::TopDirs(k) => Box::new(CallTopDirs::new(*k)),
            MapChoice::Suffix(prefix) => Box::new(PathFilter::new(
                prefix.clone(),
                PathSuffix::new(prefix.clone()),
            )),
            MapChoice::Site => {
                let paths = st_sim::config::PathScheme::default();
                Box::new(SiteMap::new([
                    (paths.scratch, "$SCRATCH".to_string()),
                    (paths.software, "$SOFTWARE".to_string()),
                    (paths.home, "$HOME".to_string()),
                    (paths.shm, "Node Local".to_string()),
                    ("/tmp".to_string(), "Node Local".to_string()),
                ]))
            }
            MapChoice::Call => Box::new(CallOnly),
        }
    }
}

fn cmd_parse(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = LoadOptions::default();
    let mut explicit_threads = false;
    while let Some(tok) = args.next() {
        match tok {
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--sequential" => opts.parallel = false,
            "--strict-names" => opts.strict_names = true,
            "--streaming" => opts.streaming = true,
            "--threads" => {
                explicit_threads = true;
                opts.threads = args
                    .value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => dir = Some(PathBuf::from(path)),
        }
    }
    // Contradictory worker budgets are rejected up front instead of
    // silently ignored: `--sequential` pins the budget to one worker,
    // and the streaming path reads each file line-at-a-time, so it can
    // never spend a `--threads` surplus *inside* a file the way the
    // default in-memory path does (for a single huge trace — streaming's
    // main use case — an explicit budget would be silently reduced to 1).
    if explicit_threads && !opts.parallel {
        return Err(
            "parse: --sequential and --threads conflict (sequential parsing uses one worker); \
             drop one of the flags"
                .to_string(),
        );
    }
    if explicit_threads && opts.streaming {
        return Err(
            "parse: --streaming and --threads conflict: streaming parses each file \
             line-at-a-time, so a worker budget beyond the file count cannot be honored \
             (no within-file chunking); drop --threads (workers default to \
             min(files, cores)) or drop --streaming"
                .to_string(),
        );
    }
    let dir = dir.ok_or("parse: missing <trace-dir>")?;
    let out = out.ok_or("parse: missing -o <log.stlog>")?;
    let interner = Interner::new_shared();
    let result = load_dir(&dir, Arc::clone(&interner), &opts).map_err(|e| e.to_string())?;
    for (file, warning) in &result.warnings {
        eprintln!("warning: {}: {warning}", file.display());
    }
    write_store(&result.log, &out).map_err(|e| e.to_string())?;
    println!(
        "parsed {} cases / {} events into {}",
        result.log.case_count(),
        result.log.total_events(),
        out.display()
    );
    Ok(())
}

fn open_log(path: &Path, filter: Option<&str>) -> Result<EventLog, String> {
    let reader = StoreReader::open(path).map_err(|e| e.to_string())?;
    match filter {
        Some(needle) => reader.read_filtered(needle).map_err(|e| e.to_string()),
        None => reader.read().map_err(|e| e.to_string()),
    }
}

struct DfgArgs {
    store: PathBuf,
    filter: Option<String>,
    map: MapChoice,
    color: String,
    ranks: bool,
    out: Option<PathBuf>,
    summary: bool,
    csv: bool,
    min_edge: u64,
    width: usize,
    activity: Option<String>,
}

fn parse_dfg_args(tokens: &[String], positional: usize) -> Result<DfgArgs, String> {
    let mut args = Args::new(tokens);
    let mut parsed = DfgArgs {
        store: PathBuf::new(),
        filter: None,
        map: MapChoice::TopDirs(2),
        color: "load".to_string(),
        ranks: false,
        out: None,
        summary: false,
        csv: false,
        min_edge: 0,
        width: 72,
        activity: None,
    };
    let mut positionals: Vec<String> = Vec::new();
    while let Some(tok) = args.next() {
        match tok {
            "--filter" => parsed.filter = Some(args.value("--filter")?.to_string()),
            "--map" => parsed.map = MapChoice::parse(args.value("--map")?)?,
            "--color" => parsed.color = args.value("--color")?.to_string(),
            "--ranks" => parsed.ranks = true,
            "--summary" => parsed.summary = true,
            "--csv" => parsed.csv = true,
            "--min-edge" => {
                parsed.min_edge = args
                    .value("--min-edge")?
                    .parse()
                    .map_err(|_| "bad --min-edge".to_string())?
            }
            "--width" => {
                parsed.width = args
                    .value("--width")?
                    .parse()
                    .map_err(|_| "bad --width".to_string())?
            }
            "-o" => parsed.out = Some(PathBuf::from(args.value("-o")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional_tok => positionals.push(positional_tok.to_string()),
        }
    }
    if positionals.len() != positional {
        return Err(format!("expected {positional} positional argument(s)"));
    }
    parsed.store = PathBuf::from(&positionals[0]);
    if positional > 1 {
        parsed.activity = Some(positionals[1].clone());
    }
    Ok(parsed)
}

fn cmd_dfg(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let mut dfg = Dfg::from_mapped(&mapped);
    if parsed.min_edge > 1 {
        dfg = dfg.filter_edges(parsed.min_edge);
    }
    let stats = IoStatistics::compute(&mapped);
    let options = st_core::render::RenderOptions {
        show_ranks: parsed.ranks,
        ..Default::default()
    };

    let dot = match parsed.color.as_str() {
        "load" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_load(&stats),
            &options,
        ),
        "bytes" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_bytes(&stats),
            &options,
        ),
        other => {
            let Some(cid) = other.strip_prefix("partition:") else {
                return Err(format!("unknown color mode {other:?}"));
            };
            let (green_log, red_log) = log.partition_by_cid(cid);
            if green_log.is_empty() {
                return Err(format!("no cases with cid {cid:?} for partition coloring"));
            }
            let dfg_g = Dfg::from_mapped(&MappedLog::new(&green_log, mapping.as_ref()));
            let dfg_r = Dfg::from_mapped(&MappedLog::new(&red_log, mapping.as_ref()));
            st_core::render::render_dot(
                &dfg,
                Some(&stats),
                &PartitionColoring::new(&dfg_g, &dfg_r),
                &options,
            )
        }
    };

    match &parsed.out {
        Some(path) => {
            std::fs::write(path, &dot).map_err(|e| e.to_string())?;
            println!("wrote {}", path.display());
        }
        None => emit(&dot),
    }
    if parsed.summary {
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_stats(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let dfg = Dfg::from_mapped(&mapped);
    let stats = IoStatistics::compute(&mapped);
    if parsed.csv {
        // Clean machine-readable output; the human header goes to stderr.
        eprintln!(
            "{} cases, {} events, {} mapped, {} activities",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        );
        emit(&stats.to_csv());
    } else {
        emit(&format!(
            "{} cases, {} events, {} mapped, {} activities\n",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        ));
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_timeline(tokens: &[String]) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 2)?;
    let activity = parsed.activity.as_deref().expect("two positionals");
    let log = open_log(&parsed.store, parsed.filter.as_deref())?;
    let mapping = parsed.map.build();
    let mapped = MappedLog::new(&log, mapping.as_ref());
    let timeline = Timeline::for_activity(&mapped, activity)
        .ok_or_else(|| format!("no events map to activity {activity:?}"))?;
    emit(&timeline.render_ascii(parsed.width));
    Ok(())
}

/// Resolves one `diff`/`query` input: a `sim:<workload>[:paper]` spec,
/// a directory of strace files, or an `st-store` container file. Store
/// files apply `filter` at read time (like the other subcommands);
/// simulated and freshly parsed logs filter after materialization.
fn load_input(spec: &str, filter: Option<&str>) -> Result<EventLog, String> {
    let narrow = |log: EventLog| match filter {
        Some(needle) => log.filter_path_contains(needle),
        None => log,
    };
    if let Some(rest) = spec.strip_prefix("sim:") {
        let (name, paper) = match rest.strip_suffix(":paper") {
            Some(name) => (name, true),
            None => (rest, false),
        };
        return build_workload_log(name, paper).map(narrow);
    }
    let path = Path::new(spec);
    if path.is_dir() {
        let interner = Interner::new_shared();
        let result = load_dir(path, Arc::clone(&interner), &LoadOptions::default())
            .map_err(|e| format!("{spec}: {e}"))?;
        for (file, warning) in &result.warnings {
            eprintln!("warning: {}: {warning}", file.display());
        }
        return Ok(narrow(result.log));
    }
    open_log(path, filter).map_err(|e| format!("{spec}: {e}"))
}

fn cmd_diff(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut inputs: Vec<String> = Vec::new();
    let mut cid_a: Option<String> = None;
    let mut cid_b: Option<String> = None;
    let mut map = MapChoice::TopDirs(2);
    let mut filter: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut dot_stdout = false;
    let mut with_stats = true;
    while let Some(tok) = args.next() {
        match tok {
            "--cid-a" => cid_a = Some(args.value("--cid-a")?.to_string()),
            "--cid-b" => cid_b = Some(args.value("--cid-b")?.to_string()),
            "--map" => map = MapChoice::parse(args.value("--map")?)?,
            "--filter" => filter = Some(args.value("--filter")?.to_string()),
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--dot" => dot_stdout = true,
            "--no-stats" => with_stats = false,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            input => inputs.push(input.to_string()),
        }
    }
    let [input_a, input_b] = inputs.as_slice() else {
        return Err("diff: expected exactly two inputs <a> <b>".to_string());
    };

    // Load both sides, then narrow each to its cid subset if requested
    // (e.g. `--cid-a s --cid-b f` splits one ior-ssf-fpp log into the
    // SSF and FPP runs).
    let select = |log: EventLog, cid: &Option<String>, side: &str| -> Result<EventLog, String> {
        let Some(cid) = cid else { return Ok(log) };
        let (selected, _rest) = log.partition_by_cid(cid);
        if selected.is_empty() {
            return Err(format!("no cases with cid {cid:?} in input {side}"));
        }
        Ok(selected)
    };
    let log_a = select(load_input(input_a, filter.as_deref())?, &cid_a, "A")?;
    let log_b = select(load_input(input_b, filter.as_deref())?, &cid_b, "B")?;

    let mapping = map.build();
    let mapped_a = MappedLog::new(&log_a, mapping.as_ref());
    let mapped_b = MappedLog::new(&log_b, mapping.as_ref());
    let dfg_a = Dfg::from_mapped(&mapped_a);
    let dfg_b = Dfg::from_mapped(&mapped_b);
    let diff = st_core::diff::diff(&dfg_a, &dfg_b);

    let options = st_core::render::RenderOptions {
        graph_name: "DFG diff".to_string(),
        show_stats: false,
        ..Default::default()
    };
    let dot = (out.is_some() || dot_stdout)
        .then(|| st_core::render::render_diff_dot(&diff, &options));
    if let (Some(path), Some(dot)) = (&out, &dot) {
        std::fs::write(path, dot).map_err(|e| e.to_string())?;
        eprintln!("wrote {}", path.display());
    }
    if dot_stdout {
        emit(dot.as_deref().unwrap_or_default());
    } else {
        emit(&st_core::render::render_diff_report(&diff));
        if with_stats {
            let stats_a = IoStatistics::compute(&mapped_a);
            let stats_b = IoStatistics::compute(&mapped_b);
            emit(&st_core::render::render_diff_stats(&diff, &stats_a, &stats_b));
        }
    }
    Ok(())
}

/// What `query` writes for each group.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EmitMode {
    Dfg,
    Stats,
    Events,
    Store,
}

impl EmitMode {
    fn parse(s: &str) -> Result<EmitMode, String> {
        Ok(match s {
            "dfg" => EmitMode::Dfg,
            "stats" => EmitMode::Stats,
            "events" => EmitMode::Events,
            "store" => EmitMode::Store,
            other => return Err(format!("unknown --emit mode {other:?} (dfg, stats, events, store)")),
        })
    }

    fn extension(&self) -> &'static str {
        match self {
            EmitMode::Dfg => "dot",
            EmitMode::Stats => "txt",
            EmitMode::Events => "tsv",
            EmitMode::Store => "stlog",
        }
    }
}

/// Turns a group key (a file path, pid, …) into a safe file stem,
/// unique within `used`: distinct keys that sanitize identically (e.g.
/// `/data/x+y` and `/data/x,y`) get `-2`, `-3`, … suffixes instead of
/// silently overwriting each other's output files.
fn sanitize_group_key(key: &str, used: &mut std::collections::HashSet<String>) -> String {
    let stem: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect();
    let trimmed = stem.trim_matches('_');
    let base = if trimmed.is_empty() { "group" } else { trimmed };
    let mut candidate = base.to_string();
    let mut n = 1usize;
    while !used.insert(candidate.clone()) {
        n += 1;
        candidate = format!("{base}-{n}");
    }
    candidate
}

fn cmd_query(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut input: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut group_by: Option<st_query::GroupKey> = None;
    let mut emit_mode = EmitMode::Dfg;
    let mut map = MapChoice::TopDirs(2);
    let mut explicit_map = false;
    let mut threads = 0usize;
    let mut explicit_threads = false;
    let mut no_pushdown = false;
    let mut out: Option<PathBuf> = None;
    while let Some(tok) = args.next() {
        match tok {
            "--filter" => filter = Some(args.value("--filter")?.to_string()),
            "--group-by" => {
                let spec = args.value("--group-by")?;
                group_by = Some(st_query::GroupKey::parse(spec).ok_or(format!(
                    "unknown --group-by key {spec:?} (file, pid, cid, host)"
                ))?);
            }
            "--emit" => emit_mode = EmitMode::parse(args.value("--emit")?)?,
            "--map" => {
                explicit_map = true;
                map = MapChoice::parse(args.value("--map")?)?;
            }
            "--threads" => {
                explicit_threads = true;
                threads = args
                    .value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?
            }
            "--no-pushdown" => no_pushdown = true,
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional => {
                if let Some(first) = &input {
                    return Err(format!(
                        "query: expected exactly one <input>, got {first:?} and {positional:?}"
                    ));
                }
                input = Some(positional.to_string());
            }
        }
    }
    let input = input.ok_or("query: missing <input>")?;
    if emit_mode == EmitMode::Store && out.is_none() {
        return Err("query: --emit store requires -o <path>".to_string());
    }
    // Events and store emission are mapping-free; an explicit --map
    // would be silently ignored, so reject it (same policy as the
    // parse-flag conflicts).
    if explicit_map && matches!(emit_mode, EmitMode::Events | EmitMode::Store) {
        return Err(
            "query: --map has no effect with --emit events|store (raw events, no activity \
             mapping); drop --map or emit dfg/stats"
                .to_string(),
        );
    }

    let pred = match &filter {
        Some(src) => st_query::parse_expr(src).map_err(|e| format!("--filter: {e}"))?,
        None => st_query::Predicate::True,
    };

    // Store inputs in the v2 format go through predicate pushdown by
    // default: only the blocks (and columns) the filter can match are
    // decoded, guided by the store's zone maps. The result is exactly
    // the full-load scan's event set. `--no-pushdown` forces the old
    // path; directories, `sim:` specs and v1 stores always use it (a
    // v1 container opened while probing is decoded right here rather
    // than re-read through `load_input`).
    let mut pushdown: Option<st_query::PrunedRead> = None;
    let mut preloaded: Option<EventLog> = None;
    let store_path = Path::new(&input);
    if !no_pushdown && !input.starts_with("sim:") && store_path.is_file() {
        let reader = StoreReader::open(store_path).map_err(|e| format!("{input}: {e}"))?;
        if reader.directory().is_some() {
            let emit_cols = match emit_mode {
                EmitMode::Store => st_store::ColumnSet::ALL,
                // DFG/stats/events never look at requested/offset.
                _ => st_store::ColumnSet::ALL
                    .without(st_store::ColumnSet::REQUESTED | st_store::ColumnSet::OFFSET),
            };
            if explicit_threads {
                eprintln!(
                    "query: note: --threads has no effect on the pushdown path (block \
                     decode is sequential); use --no-pushdown to parallel-scan a full load"
                );
            }
            pushdown = Some(
                st_query::read_pruned(&reader, &pred, emit_cols)
                    .map_err(|e| format!("{input}: {e}"))?,
            );
        } else {
            preloaded = Some(reader.read().map_err(|e| format!("{input}: {e}"))?);
        }
    }

    let (log, pushdown_stats) = match pushdown {
        Some(pruned) => (pruned.log, Some(pruned.stats)),
        None => match preloaded {
            Some(log) => (log, None),
            None => (load_input(&input, None)?, None),
        },
    };
    let view = match &pushdown_stats {
        // The pruned log holds exactly the matching events already.
        Some(_) => st_model::LogView::full(&log),
        None => st_query::scan_par(&log, &pred, threads),
    };
    let (events_total, cases_total) = match &pushdown_stats {
        Some(s) => (s.events_total as usize, s.cases_total),
        None => (log.total_events(), log.case_count()),
    };
    eprintln!(
        "{} of {} events match ({} of {} cases)",
        view.event_count(),
        events_total,
        view.case_count(),
        cases_total
    );
    if let Some(s) = &pushdown_stats {
        eprintln!(
            "pushdown: pruned {}/{} blocks ({} of {} cases whole), decoded {} of {} bytes ({:.1}%)",
            s.blocks_pruned,
            s.blocks_total,
            s.cases_pruned,
            s.cases_total,
            s.bytes_decoded,
            s.bytes_total,
            if s.bytes_total == 0 {
                100.0
            } else {
                100.0 * s.bytes_decoded as f64 / s.bytes_total as f64
            }
        );
    }
    if view.is_empty() {
        return Err("no events match the filter".to_string());
    }

    // Group-by explodes the slice into a DFG family; without it the
    // whole slice is one unnamed group.
    let groups: Vec<(String, st_model::LogView<'_>)> = match group_by {
        Some(key) => st_query::group_by(&view, key),
        None => vec![(String::new(), view)],
    };
    let multi = groups.len() > 1 || (groups.len() == 1 && !groups[0].0.is_empty());

    // One mapping pass over the full log serves every projection.
    let mapping = map.build();
    let mapped = (emit_mode != EmitMode::Store && emit_mode != EmitMode::Events)
        .then(|| MappedLog::new(&log, mapping.as_ref()));

    // With `-o` and multiple groups, the path is a directory (one file
    // per group); with a single group it is the output file itself.
    let out_dir = match (&out, multi) {
        (Some(path), true) => {
            std::fs::create_dir_all(path).map_err(|e| e.to_string())?;
            Some(path.clone())
        }
        _ => None,
    };

    let snap = log.snapshot();
    let mut used_stems = std::collections::HashSet::new();
    for (key, group) in &groups {
        let body = match emit_mode {
            EmitMode::Dfg => {
                let mapped = mapped.as_ref().expect("mapped for dfg");
                let dfg = Dfg::from_mapped_view(mapped, group);
                let stats = IoStatistics::compute_view(mapped, group);
                let options = st_core::render::RenderOptions::default();
                st_core::render::render_dot(
                    &dfg,
                    Some(&stats),
                    &StatisticsColoring::by_load(&stats),
                    &options,
                )
            }
            EmitMode::Stats => {
                let mapped = mapped.as_ref().expect("mapped for stats");
                let dfg = Dfg::from_mapped_view(mapped, group);
                let stats = IoStatistics::compute_view(mapped, group);
                format!(
                    "{} events in {} case(s)\n{}",
                    group.event_count(),
                    group.case_count(),
                    render_summary(&dfg, Some(&stats))
                )
            }
            EmitMode::Events => {
                let mut body = String::from("cid\thost\trid\tpid\tcall\tstart\tdur\tpath\tsize\tok\n");
                for (meta, e) in group.iter_events() {
                    let call = match e.call {
                        Syscall::Other(sym) => snap.resolve(sym).to_string(),
                        named => named.static_name().unwrap_or("?").to_string(),
                    };
                    body.push_str(&format!(
                        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                        snap.resolve(meta.cid),
                        snap.resolve(meta.host),
                        meta.rid,
                        e.pid,
                        call,
                        e.start.format_time_of_day(),
                        e.dur.format_duration(),
                        snap.resolve(e.path),
                        e.size.map(|s| s.to_string()).unwrap_or_else(|| "-".to_string()),
                        e.ok,
                    ));
                }
                body
            }
            EmitMode::Store => String::new(),
        };

        match (&out, &out_dir) {
            // Multiple groups into a directory.
            (_, Some(dir)) => {
                let path = dir.join(format!(
                    "{}.{}",
                    sanitize_group_key(key, &mut used_stems),
                    emit_mode.extension()
                ));
                if emit_mode == EmitMode::Store {
                    write_store(&group.to_event_log(), &path).map_err(|e| e.to_string())?;
                } else {
                    std::fs::write(&path, &body).map_err(|e| e.to_string())?;
                }
                eprintln!("wrote {}", path.display());
            }
            // Single output file.
            (Some(path), None) => {
                if emit_mode == EmitMode::Store {
                    write_store(&group.to_event_log(), path).map_err(|e| e.to_string())?;
                } else {
                    std::fs::write(path, &body).map_err(|e| e.to_string())?;
                }
                eprintln!("wrote {}", path.display());
            }
            // Stdout, with a group header when exploding.
            (None, None) => {
                if multi {
                    let comment = if emit_mode == EmitMode::Dfg { "//" } else { "#" };
                    emit(&format!("{comment} group: {key}\n"));
                }
                emit(&body);
            }
        }
    }
    Ok(())
}

fn cmd_simulate(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut workload: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut paper = false;
    let mut emit_strace = false;
    while let Some(tok) = args.next() {
        match tok {
            "--out" => out = Some(PathBuf::from(args.value("--out")?)),
            "--paper" => paper = true,
            "--emit-strace" => emit_strace = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            name => workload = Some(name.to_string()),
        }
    }
    let workload = workload.ok_or("simulate: missing workload name")?;
    let out = out.ok_or("simulate: missing --out <dir>")?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let log = build_workload_log(&workload, paper)?;
    let store_path = out.join(format!("{workload}.stlog"));
    write_store(&log, &store_path).map_err(|e| e.to_string())?;
    println!(
        "simulated {} cases / {} events -> {}",
        log.case_count(),
        log.total_events(),
        store_path.display()
    );
    if emit_strace {
        let trace_dir = out.join(format!("{workload}-traces"));
        let files = st_sim::emit_strace_dir(&log, &trace_dir).map_err(|e| e.to_string())?;
        println!("emitted {} strace files into {}", files.len(), trace_dir.display());
    }
    Ok(())
}

fn build_workload_log(workload: &str, paper: bool) -> Result<EventLog, String> {
    use st_ior::workload::StartupProfile;
    use st_ior::{run_ior, Api, IorOptions};
    match workload {
        "ls" => {
            let filter = TraceFilter::only([Syscall::Read, Syscall::Write]);
            let mut log = EventLog::with_new_interner();
            let sim = Simulation::new(SimConfig::small(3));
            sim.run("a", vec![st_sim::workloads::ls_ops(); 3], &filter, &mut log);
            let sim_b = Simulation::new(SimConfig { base_rid: 9115, ..SimConfig::small(3) });
            sim_b.run("b", vec![st_sim::workloads::ls_l_ops(); 3], &filter, &mut log);
            Ok(log)
        }
        "ior-ssf-fpp" => {
            let config = scale_config(paper);
            let mut log = EventLog::with_new_interner();
            let profile = StartupProfile::default();
            let filter = TraceFilter::experiment_a();
            let ssf = IorOptions::paper_experiment(
                false,
                Api::Posix,
                &format!("{}/ssf/test", config.paths.scratch),
            );
            run_ior("s", &ssf, &profile, &config, &filter, &mut log);
            let fpp = IorOptions::paper_experiment(
                true,
                Api::Posix,
                &format!("{}/fpp/test", config.paths.scratch),
            );
            run_ior("f", &fpp, &profile, &config, &filter, &mut log);
            Ok(log)
        }
        "ior-mpiio" => {
            let config = scale_config(paper);
            let mut log = EventLog::with_new_interner();
            let profile = StartupProfile::default();
            let filter = TraceFilter::experiment_b();
            let test_file = format!("{}/ssf/test", config.paths.scratch);
            run_ior(
                "g",
                &IorOptions::paper_experiment(false, Api::Mpiio, &test_file),
                &profile,
                &config,
                &filter,
                &mut log,
            );
            run_ior(
                "r",
                &IorOptions::paper_experiment(false, Api::Posix, &test_file),
                &profile,
                &config,
                &filter,
                &mut log,
            );
            Ok(log)
        }
        // Single-mode halves of `ior-ssf-fpp`, so one IOR access mode can
        // be generated (and narrowed per file) without its counterpart:
        // `sim:ssf` is the paper's shared-file run, `sim:fpp` the
        // file-per-process run.
        "ssf" | "fpp" => {
            let fpp = workload == "fpp";
            let config = scale_config(paper);
            let mut log = EventLog::with_new_interner();
            let profile = StartupProfile::default();
            let filter = TraceFilter::experiment_a();
            let opts = IorOptions::paper_experiment(
                fpp,
                Api::Posix,
                &format!("{}/{workload}/test", config.paths.scratch),
            );
            run_ior(if fpp { "f" } else { "s" }, &opts, &profile, &config, &filter, &mut log);
            Ok(log)
        }
        other => Err(format!(
            "unknown workload {other:?} (ls, ior-ssf-fpp, ior-mpiio, ssf, fpp)"
        )),
    }
}

fn scale_config(paper: bool) -> SimConfig {
    if paper {
        SimConfig::default()
    } else {
        SimConfig {
            hosts: vec!["jwc01".to_string(), "jwc02".to_string()],
            cores_per_host: 4,
            ..Default::default()
        }
    }
}

// Used by the `--map` machinery above; kept here so the CLI compiles the
// same mapping set the library exposes.
#[allow(dead_code)]
fn skip_openat_site_mapping(site: SiteMap) -> impl Mapping {
    FnMapping(move |ctx: &MapCtx<'_>, meta: &CaseMeta, e: &Event| {
        if matches!(e.call, Syscall::Openat | Syscall::Open) {
            return None;
        }
        site.activity_name(ctx, meta, e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_sanitization_is_collision_free() {
        let mut used = std::collections::HashSet::new();
        assert_eq!(sanitize_group_key("/data/x.h5", &mut used), "data_x.h5");
        // Distinct keys that sanitize identically get disambiguated, in
        // order, instead of silently sharing one output file.
        assert_eq!(sanitize_group_key("/data/x+y", &mut used), "data_x_y");
        assert_eq!(sanitize_group_key("/data/x,y", &mut used), "data_x_y-2");
        assert_eq!(sanitize_group_key("/data/x=y", &mut used), "data_x_y-3");
        // Keys with no safe characters still produce a stem.
        assert_eq!(sanitize_group_key("///", &mut used), "group");
        assert_eq!(sanitize_group_key("&&&", &mut used), "group-2");
    }
}
