//! `stinspect` — command-line front end for the DFG synthesis pipeline.
//!
//! ```text
//! stinspect parse <input> -o <log.stlog> [--sequential] [--strict-names]
//!               [--threads N] [--streaming]
//! stinspect dfg <input> [--filter EXPR] [--map MAP] [--color MODE]
//!               [--ranks] [-o out.dot] [--summary] [--no-pushdown]
//! stinspect stats <input> [--filter EXPR] [--map MAP] [--csv] [--no-pushdown]
//! stinspect timeline <input> <activity> [--filter EXPR] [--map MAP] [--width N]
//!               [--no-pushdown]
//! stinspect simulate <ls|ior-ssf-fpp|ior-mpiio|ssf|fpp> --out <dir> [--paper] [--emit-strace]
//! stinspect diff <a> <b> [--cid-a CID] [--cid-b CID] [--map MAP] [--filter EXPR]
//!               [-o out.dot] [--dot] [--no-pushdown]
//! stinspect query <input> [--filter EXPR] [--then-filter EXPR]...
//!               [--group-by file|pid|cid|host]
//!               [--emit dfg|stats|events|store] [--map MAP] [--threads N]
//!               [--no-pushdown] [-o PATH]
//! stinspect fsck <store>
//! stinspect serve -o <store> [--addr HOST:PORT] [--max-conns N]
//!               [--block-events N] [--checkpoint-cases N]
//! ```
//!
//! Global flags apply to every command: `--salvage` opens store inputs
//! in salvage mode (corrupt blocks are quarantined and reported as
//! warnings instead of failing the open; inert on non-store inputs),
//! `--deny-warnings` promotes any session warning to a hard error with
//! a nonzero exit, and `--metrics[=text|json|chrome]` (optionally with
//! `--metrics-out PATH`) reports where the invocation spent its time
//! and bytes — a timed stage tree from the `st-obs` layer under every
//! route, renderable as text, stable JSON (`st-obs/1`), or a Chrome
//! trace-event file. `fsck` reports a container's health —
//! per-section and per-block verdicts plus the recoverable event
//! fraction — and exits 0 (clean), 3 (degraded: salvage would lose
//! events) or 4 (unreadable: salvage cannot open it at all).
//!
//! Every `<input>` is resolved by the same `st_source::TraceSource`
//! layer: an `st-store` container file (v1 or v2), a directory of
//! strace files, a single strace file, or a simulate spec
//! `sim:<workload>[:paper]` (the workloads `simulate` accepts,
//! generated in memory).
//!
//! `EXPR` is the `st-query` filter syntax on **every** subcommand, e.g.
//! `pid=42 path~"*.h5" t=[1.2s,3s) ok=false` or `class=write and
//! size>=1m` — see DESIGN.md §7 for the grammar (the old path-substring
//! `--filter` spelling is `path~"*needle*"` now). On STLOG v2 store
//! inputs the filter is pushed down into the reader by the session
//! planner (zone-mapped blocks that cannot match are never decoded; a
//! `pushdown:` summary line reports what was skipped) — on every
//! subcommand, not just `query`; `--no-pushdown` forces the full-load
//! scan path, which returns identical results. Time windows with unit
//! suffixes are offsets from the log's first event (`t=[0s,2s)` = the
//! first two seconds of the run); `HH:MM:SS[.ffffff]` endpoints are
//! absolute times of day. `--group-by` explodes the slice into
//! per-file / per-pid / per-cid / per-host DFG families.
//!
//! `query --then-filter EXPR` (repeatable) is the paper's iterative
//! narrowing as one invocation: the first query runs with `--filter`
//! through a decoded-block cache, then each `--then-filter` conjoins
//! its expression and **re-queries the open container** — the refined
//! plan re-prunes against the already-loaded directory and serves
//! every block the previous pass decoded from memory (a `requery:`
//! line reports the cache hits; with `--metrics` they appear as
//! `cache.hits` / `cache.misses` / `cache.bytes` counters). The
//! projections run on the final slice.
//!
//! `MAP` is one of `topdirs[:K]` (Eq. 4, default K=2), `suffix:PREFIX`
//! (Fig. 4 naming), `site` (the experiments' `$SCRATCH`/`$SOFTWARE`
//! abstraction, default site rules), or `call` (syscall name only).
//! `MODE` is `load` (default), `bytes`, or `partition:CID` (green = the
//! given command id, red = everything else).

use std::path::PathBuf;
use std::process::ExitCode;

use st_core::prelude::*;
use st_source::{Inspector, RecoveryPolicy, Session};
use st_store::{write_store, ColumnSet, Verdict};

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// (`stinspect ... | head`).
fn emit(text: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    if out.write_all(text.as_bytes()).is_err() || out.flush().is_err() {
        std::process::exit(0);
    }
}

/// Flags that apply to every subcommand, stripped before dispatch.
#[derive(Debug, Clone, Copy, Default)]
struct Policy {
    /// Open store inputs with [`RecoveryPolicy::Salvage`].
    salvage: bool,
    /// Promote any session warning to a hard error.
    deny_warnings: bool,
}

impl Policy {
    fn recovery(&self) -> RecoveryPolicy {
        if self.salvage {
            RecoveryPolicy::Salvage
        } else {
            RecoveryPolicy::Strict
        }
    }
}

/// Output format for the global `--metrics` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    /// Indented stage tree on stderr (the `--metrics` default).
    Text,
    /// One line of stable-schema JSON (`st-obs/1`) on stderr.
    Json,
    /// Chrome trace-event document for `about:tracing` / Perfetto;
    /// requires `--metrics-out` (it is a file format, not a log line).
    Chrome,
}

impl MetricsFormat {
    fn parse(s: &str) -> Result<MetricsFormat, String> {
        match s {
            "text" => Ok(MetricsFormat::Text),
            "json" => Ok(MetricsFormat::Json),
            "chrome" => Ok(MetricsFormat::Chrome),
            other => Err(format!(
                "unknown --metrics format {other:?} (text, json, chrome)"
            )),
        }
    }
}

/// The most recent session's pipeline report. The session layer
/// annotates its own report with route notes and folds the external
/// accounting into the counter totals; the command-level report
/// rendered by `--metrics` covers the whole invocation, so it adopts
/// those notes and totals at render time.
static LAST_REPORT: std::sync::OnceLock<std::sync::Mutex<Option<st_obs::PipelineReport>>> =
    std::sync::OnceLock::new();

fn remember_session_report(session: &Session) {
    let cell = LAST_REPORT.get_or_init(|| std::sync::Mutex::new(None));
    *cell.lock().unwrap_or_else(|e| e.into_inner()) = Some(session.report().clone());
}

/// Renders the metrics collected over the whole invocation in the
/// requested format, to stderr or to `--metrics-out`.
fn render_metrics(format: MetricsFormat, out_path: Option<&std::path::Path>, mark: &st_obs::Mark) {
    let body = match format {
        MetricsFormat::Chrome => st_obs::chrome_since(mark),
        _ => {
            let mut report = st_obs::report_since(mark);
            let last = LAST_REPORT
                .get()
                .and_then(|cell| cell.lock().unwrap_or_else(|e| e.into_inner()).take());
            if let Some(last) = last {
                for (k, v) in &last.notes {
                    report.set_note(k, v.clone());
                }
                for (k, v) in &last.totals {
                    report.merge_counter(k, *v);
                }
            }
            match format {
                MetricsFormat::Text => report.render_text(),
                _ => {
                    let mut line = report.render_json();
                    line.push('\n');
                    line
                }
            }
        }
    };
    match out_path {
        Some(path) => match std::fs::write(path, &body) {
            Ok(()) => eprintln!("metrics: wrote {}", path.display()),
            Err(e) => eprintln!("stinspect: --metrics-out {}: {e}", path.display()),
        },
        None => eprint!("{body}"),
    }
}

fn main() -> ExitCode {
    let mut policy = Policy::default();
    let mut metrics: Option<MetricsFormat> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--salvage" => policy.salvage = true,
            "--deny-warnings" => policy.deny_warnings = true,
            "--metrics" => metrics = Some(MetricsFormat::Text),
            "--metrics-out" => {
                let Some(path) = iter.next() else {
                    eprintln!("stinspect: --metrics-out requires a path");
                    return ExitCode::from(2);
                };
                metrics_out = Some(PathBuf::from(path));
            }
            other => match other.strip_prefix("--metrics=") {
                Some(fmt) => match MetricsFormat::parse(fmt) {
                    Ok(f) => metrics = Some(f),
                    Err(msg) => {
                        eprintln!("stinspect: {msg}");
                        return ExitCode::from(2);
                    }
                },
                None => args.push(arg),
            },
        }
    }
    if metrics == Some(MetricsFormat::Chrome) && metrics_out.is_none() {
        eprintln!(
            "stinspect: --metrics=chrome requires --metrics-out <file> \
             (a trace-event document, not a stderr rendering)"
        );
        return ExitCode::from(2);
    }
    if metrics_out.is_some() && metrics.is_none() {
        eprintln!("stinspect: --metrics-out requires --metrics[=text|json|chrome]");
        return ExitCode::from(2);
    }
    // Collection stays off (one relaxed load per instrumented site)
    // unless --metrics asks for it; the mark scopes the report to this
    // invocation.
    let obs_mark = metrics.map(|_| {
        st_obs::set_enabled(true);
        st_obs::mark()
    });

    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let code = {
        // Root span: every stage of the invocation nests under the
        // command name. Dropped before the report is rendered so the
        // tree is complete.
        let _root = st_obs::span_with("stinspect", || command.clone());
        match command.as_str() {
            // fsck owns its exit codes (0 clean / 3 degraded / 4 unreadable).
            "fsck" => cmd_fsck(rest),
            "serve" => match cmd_serve(rest) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("stinspect: {msg}");
                    ExitCode::FAILURE
                }
            },
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                ExitCode::SUCCESS
            }
            cmd => {
                let result = match cmd {
                    "parse" => cmd_parse(rest, policy),
                    "dfg" => cmd_dfg(rest, policy),
                    "stats" => cmd_stats(rest, policy),
                    "timeline" => cmd_timeline(rest, policy),
                    "simulate" => cmd_simulate(rest),
                    "diff" => cmd_diff(rest, policy),
                    "query" => cmd_query(rest, policy),
                    other => Err(format!("unknown command {other:?}\n{USAGE}")),
                };
                match result {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(msg) => {
                        eprintln!("stinspect: {msg}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
    };
    if let (Some(format), Some(mark)) = (metrics, &obs_mark) {
        render_metrics(format, metrics_out.as_deref(), mark);
    }
    code
}

const USAGE: &str = "\
stinspect — inspection of I/O operations from system call traces (DFG synthesis)

every <input> is a store file | strace dir | strace file | sim:<workload>[:paper];
EXPR is the st-query filter syntax, e.g. pid=42 path~\"*.h5\" t=[1.2s,3s) ok=false
(v2 store inputs push the filter into the reader; --no-pushdown forces a full scan)

commands:
  parse <input> -o <log.stlog>       ingest any input into a container
      [--sequential] [--strict-names] [--threads N] [--streaming]
  dfg <input>                        synthesize and render the DFG
      [--filter EXPR] [--map topdirs[:K]|suffix:PREFIX|site|call]
      [--color load|bytes|partition:CID] [--ranks] [--min-edge N]
      [-o out.dot] [--summary] [--no-pushdown]
  stats <input>                      print per-activity statistics
      [--filter EXPR] [--map MAP] [--csv] [--no-pushdown]
  timeline <input> <activity>        per-case interval plot (Fig. 5)
      [--map MAP] [--width N] [--filter EXPR] [--no-pushdown]
  simulate <ls|ior-ssf-fpp|ior-mpiio|ssf|fpp> --out <dir>
      [--paper] [--emit-strace]      generate a workload's event log
  diff <a> <b>                       compare two runs' DFGs
      [--cid-a CID] [--cid-b CID] [--map MAP] [--filter EXPR]
      [-o out.dot] [--dot] [--no-stats] [--no-pushdown]
  query <input>                      filter, slice and project the log
      [--filter EXPR] [--then-filter EXPR]... [--group-by file|pid|cid|host]
      [--emit dfg|stats|events|store] [--map MAP] [--threads N]
      [--no-pushdown] [-o PATH]
      each --then-filter conjoins and re-queries the open container
      through the decoded-block cache (hot iterative narrowing)
  fsck <store>                       report container health
      exit 0 = clean, 3 = degraded (salvage loses events), 4 = unreadable
  serve -o <store>                   stinspectd: live ingest + query daemon
      [--addr HOST:PORT] [--max-conns N] [--block-events N]
      [--checkpoint-cases N]
      POST /ingest/<cid>_<host>_<rid>.st streams strace lines in;
      GET /query?filter=EXPR&emit=events|stats|dfg serves the sealed
      store (CLI-identical bodies); GET /dfg merges the live DFG;
      GET /tail long-polls the event feed; GET /metrics reports st-obs
      JSON; POST /shutdown (or SIGTERM) seals and finishes the store

global flags (any command):
  --salvage          open store inputs in salvage mode: corrupt blocks are
                     quarantined and reported as warnings instead of failing
  --deny-warnings    promote any warning to a hard error (nonzero exit)
  --metrics[=text|json|chrome]
                     collect and report pipeline metrics: a timed stage tree
                     with counters (bytes read, blocks pruned, events scanned).
                     text (default) = indented tree on stderr; json = one line
                     of stable st-obs/1 JSON on stderr; chrome = trace-event
                     file for Perfetto/about:tracing (needs --metrics-out)
  --metrics-out PATH write the metrics rendering to PATH instead of stderr";

/// Simple flag cursor over the argument list.
struct Args<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(tokens: &'a [String]) -> Self {
        Args { tokens, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let tok = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(tok)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }
}

/// A mapping selected on the command line.
enum MapChoice {
    TopDirs(usize),
    Suffix(String),
    Site,
    Call,
}

impl MapChoice {
    fn parse(spec: &str) -> Result<MapChoice, String> {
        if spec == "call" {
            return Ok(MapChoice::Call);
        }
        if spec == "site" {
            return Ok(MapChoice::Site);
        }
        if let Some(rest) = spec.strip_prefix("suffix:") {
            return Ok(MapChoice::Suffix(rest.to_string()));
        }
        if spec == "topdirs" {
            return Ok(MapChoice::TopDirs(2));
        }
        if let Some(rest) = spec.strip_prefix("topdirs:") {
            let k: usize = rest.parse().map_err(|_| format!("bad depth {rest:?}"))?;
            return Ok(MapChoice::TopDirs(k));
        }
        Err(format!("unknown mapping {spec:?}"))
    }

    fn build(&self) -> Box<dyn Mapping + Send + Sync> {
        match self {
            MapChoice::TopDirs(k) => Box::new(CallTopDirs::new(*k)),
            MapChoice::Suffix(prefix) => Box::new(PathFilter::new(
                prefix.clone(),
                PathSuffix::new(prefix.clone()),
            )),
            MapChoice::Site => {
                let paths = st_sim::config::PathScheme::default();
                Box::new(SiteMap::new([
                    (paths.scratch, "$SCRATCH".to_string()),
                    (paths.software, "$SOFTWARE".to_string()),
                    (paths.home, "$HOME".to_string()),
                    (paths.shm, "Node Local".to_string()),
                    ("/tmp".to_string(), "Node Local".to_string()),
                ]))
            }
            MapChoice::Call => Box::new(CallOnly),
        }
    }
}

/// The event columns the mapping/DFG/statistics/timeline projections
/// read: everything except `requested`/`offset`, which only full-
/// fidelity store copies need.
fn analysis_columns() -> ColumnSet {
    ColumnSet::ALL.without(ColumnSet::REQUESTED | ColumnSet::OFFSET)
}

/// Opens `input` through the session layer with the shared CLI wiring:
/// an optional `--filter` expression, a mapping, the pushdown toggle
/// and a column budget. Prints the session's structured warnings to
/// stderr (the channel's CLI rendering).
fn open_session(
    input: &str,
    filter: Option<&str>,
    map: &MapChoice,
    no_pushdown: bool,
    columns: ColumnSet,
    policy: Policy,
) -> Result<Session, String> {
    let mut inspector = Inspector::open(input)
        .map_err(|e| e.to_string())?
        .map_boxed(map.build())
        .pushdown(!no_pushdown)
        .columns(columns)
        .recovery(policy.recovery())
        .deny_warnings(policy.deny_warnings);
    if let Some(expr) = filter {
        inspector = inspector
            .filter_expr(expr)
            .map_err(|e| format!("--filter: {e}"))?;
    }
    let session = inspector.session().map_err(|e| e.to_string())?;
    report_session(&session);
    Ok(session)
}

/// Prints a session's warnings and, after a salvage-mode open, a
/// one-line recovery summary; stashes the session's pipeline report
/// for the `--metrics` rendering at exit.
fn report_session(session: &Session) {
    remember_session_report(session);
    for warning in session.warnings() {
        eprintln!("warning: {warning}");
    }
    if let Some(report) = session.salvage() {
        if report.verdict() == Verdict::Degraded {
            eprintln!(
                "salvage: recovered {}/{} events ({}/{} blocks)",
                report.events_recovered,
                report.events_total,
                report.blocks_recovered,
                report.blocks_total
            );
        }
    }
}

/// Prints the pruning summary when the session took the pushdown
/// route — a rendering of the session's [`st_obs::PipelineReport`]
/// counters (the same totals `--metrics` reports). `prefix`
/// attributes the line when several inputs report (e.g. `"A: "`/`"B:
/// "` for the two sides of a diff).
fn report_pushdown(session: &Session, prefix: &str) {
    if session.pushdown().is_none() {
        return;
    }
    let r = session.report();
    let (decoded, total) = (r.counter("bytes_decoded"), r.counter("bytes_total"));
    eprintln!(
        "{prefix}pushdown: pruned {}/{} blocks ({} of {} cases whole), decoded {} of {} bytes ({:.1}%), read {} bytes off disk",
        r.counter("blocks_pruned"),
        r.counter("blocks_total"),
        r.counter("cases_pruned"),
        r.counter("cases_total"),
        decoded,
        total,
        if total == 0 {
            100.0
        } else {
            100.0 * decoded as f64 / total as f64
        },
        r.counter("bytes_read"),
    );
    // On a re-query session, account how much decode work the block
    // cache absorbed (hits + misses = the blocks the plan admitted).
    let (hits, misses) = (r.counter("cache.hits"), r.counter("cache.misses"));
    if hits + misses > 0 {
        eprintln!(
            "{prefix}requery: {hits} of {} decoded blocks from cache ({} bytes resident)",
            hits + misses,
            r.counter("cache.bytes"),
        );
    }
}

fn cmd_parse(tokens: &[String], policy: Policy) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut input: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = st_strace::LoadOptions::default();
    let mut explicit_threads = false;
    while let Some(tok) = args.next() {
        match tok {
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--sequential" => opts.parallel = false,
            "--strict-names" => opts.strict_names = true,
            "--streaming" => opts.streaming = true,
            "--threads" => {
                explicit_threads = true;
                opts.threads = args
                    .value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            spec => input = Some(spec.to_string()),
        }
    }
    // Contradictory worker budgets are rejected up front instead of
    // silently ignored: `--sequential` pins the budget to one worker,
    // and the streaming path reads each file line-at-a-time, so it can
    // never spend a `--threads` surplus *inside* a file the way the
    // default in-memory path does (for a single huge trace — streaming's
    // main use case — an explicit budget would be silently reduced to 1).
    if explicit_threads && !opts.parallel {
        return Err(
            "parse: --sequential and --threads conflict (sequential parsing uses one worker); \
             drop one of the flags"
                .to_string(),
        );
    }
    if explicit_threads && opts.streaming {
        return Err(
            "parse: --streaming and --threads conflict: streaming parses each file \
             line-at-a-time, so a worker budget beyond the file count cannot be honored \
             (no within-file chunking); drop --threads (workers default to \
             min(files, cores)) or drop --streaming"
                .to_string(),
        );
    }
    let input = input.ok_or("parse: missing <input>")?;
    let out = out.ok_or("parse: missing -o <log.stlog>")?;
    // Loader flags (--sequential/--streaming/--strict-names/--threads)
    // on a store or sim: input are rejected by the session layer —
    // they shape strace text loading and would be silently inert
    // anywhere else.
    let session = Inspector::open(&input)
        .map_err(|e| e.to_string())?
        .load_options(opts)
        .recovery(policy.recovery())
        .deny_warnings(policy.deny_warnings)
        .session()
        .map_err(|e| e.to_string())?;
    report_session(&session);
    let log = session.into_log();
    write_store(&log, &out).map_err(|e| e.to_string())?;
    println!(
        "parsed {} cases / {} events into {}",
        log.case_count(),
        log.total_events(),
        out.display()
    );
    Ok(())
}

struct DfgArgs {
    input: String,
    filter: Option<String>,
    map: MapChoice,
    color: String,
    ranks: bool,
    out: Option<PathBuf>,
    summary: bool,
    csv: bool,
    no_pushdown: bool,
    min_edge: u64,
    width: usize,
    activity: Option<String>,
}

fn parse_dfg_args(tokens: &[String], positional: usize) -> Result<DfgArgs, String> {
    let mut args = Args::new(tokens);
    let mut parsed = DfgArgs {
        input: String::new(),
        filter: None,
        map: MapChoice::TopDirs(2),
        color: "load".to_string(),
        ranks: false,
        out: None,
        summary: false,
        csv: false,
        no_pushdown: false,
        min_edge: 0,
        width: 72,
        activity: None,
    };
    let mut positionals: Vec<String> = Vec::new();
    while let Some(tok) = args.next() {
        match tok {
            "--filter" => parsed.filter = Some(args.value("--filter")?.to_string()),
            "--map" => parsed.map = MapChoice::parse(args.value("--map")?)?,
            "--color" => parsed.color = args.value("--color")?.to_string(),
            "--ranks" => parsed.ranks = true,
            "--summary" => parsed.summary = true,
            "--csv" => parsed.csv = true,
            "--no-pushdown" => parsed.no_pushdown = true,
            "--min-edge" => {
                parsed.min_edge = args
                    .value("--min-edge")?
                    .parse()
                    .map_err(|_| "bad --min-edge".to_string())?
            }
            "--width" => {
                parsed.width = args
                    .value("--width")?
                    .parse()
                    .map_err(|_| "bad --width".to_string())?
            }
            "-o" => parsed.out = Some(PathBuf::from(args.value("-o")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional_tok => positionals.push(positional_tok.to_string()),
        }
    }
    if positionals.len() != positional {
        return Err(format!("expected {positional} positional argument(s)"));
    }
    parsed.input = positionals[0].clone();
    if positional > 1 {
        parsed.activity = Some(positionals[1].clone());
    }
    Ok(parsed)
}

/// Opens the session a `dfg`/`stats`/`timeline` invocation describes.
fn open_dfg_session(parsed: &DfgArgs, policy: Policy) -> Result<Session, String> {
    let session = open_session(
        &parsed.input,
        parsed.filter.as_deref(),
        &parsed.map,
        parsed.no_pushdown,
        analysis_columns(),
        policy,
    )?;
    report_pushdown(&session, "");
    Ok(session)
}

fn cmd_dfg(tokens: &[String], policy: Policy) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let session = open_dfg_session(&parsed, policy)?;
    let mapped = session.mapped();
    let mut dfg = Dfg::from_mapped(&mapped);
    if parsed.min_edge > 1 {
        dfg = dfg.filter_edges(parsed.min_edge);
    }
    let stats = IoStatistics::compute(&mapped);
    let options = st_core::render::RenderOptions {
        show_ranks: parsed.ranks,
        ..Default::default()
    };

    let dot = match parsed.color.as_str() {
        "load" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_load(&stats),
            &options,
        ),
        "bytes" => st_core::render::render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_bytes(&stats),
            &options,
        ),
        other => {
            let Some(cid) = other.strip_prefix("partition:") else {
                return Err(format!("unknown color mode {other:?}"));
            };
            let (green_log, red_log) = session.log().partition_by_cid(cid);
            if green_log.is_empty() {
                return Err(format!("no cases with cid {cid:?} for partition coloring"));
            }
            let dfg_g = Dfg::from_mapped(&MappedLog::new(&green_log, session.mapping()));
            let dfg_r = Dfg::from_mapped(&MappedLog::new(&red_log, session.mapping()));
            st_core::render::render_dot(
                &dfg,
                Some(&stats),
                &PartitionColoring::new(&dfg_g, &dfg_r),
                &options,
            )
        }
    };

    match &parsed.out {
        Some(path) => {
            std::fs::write(path, &dot).map_err(|e| e.to_string())?;
            println!("wrote {}", path.display());
        }
        None => emit(&dot),
    }
    if parsed.summary {
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_stats(tokens: &[String], policy: Policy) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 1)?;
    let session = open_dfg_session(&parsed, policy)?;
    let log = session.log();
    let mapped = session.mapped();
    let dfg = Dfg::from_mapped(&mapped);
    let stats = IoStatistics::compute(&mapped);
    if parsed.csv {
        // Clean machine-readable output; the human header goes to stderr.
        eprintln!(
            "{} cases, {} events, {} mapped, {} activities",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        );
        emit(&stats.to_csv());
    } else {
        emit(&format!(
            "{} cases, {} events, {} mapped, {} activities\n",
            log.case_count(),
            log.total_events(),
            mapped.mapped_events(),
            mapped.activity_count()
        ));
        emit(&render_summary(&dfg, Some(&stats)));
        emit("\n");
    }
    Ok(())
}

fn cmd_timeline(tokens: &[String], policy: Policy) -> Result<(), String> {
    let parsed = parse_dfg_args(tokens, 2)?;
    let activity = parsed.activity.as_deref().expect("two positionals");
    let session = open_dfg_session(&parsed, policy)?;
    let mapped = session.mapped();
    let timeline = Timeline::for_activity(&mapped, activity)
        .ok_or_else(|| format!("no events map to activity {activity:?}"))?;
    emit(&timeline.render_ascii(parsed.width));
    Ok(())
}

fn cmd_diff(tokens: &[String], policy: Policy) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut inputs: Vec<String> = Vec::new();
    let mut cid_a: Option<String> = None;
    let mut cid_b: Option<String> = None;
    let mut map = MapChoice::TopDirs(2);
    let mut filter: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut dot_stdout = false;
    let mut with_stats = true;
    let mut no_pushdown = false;
    while let Some(tok) = args.next() {
        match tok {
            "--cid-a" => cid_a = Some(args.value("--cid-a")?.to_string()),
            "--cid-b" => cid_b = Some(args.value("--cid-b")?.to_string()),
            "--map" => map = MapChoice::parse(args.value("--map")?)?,
            "--filter" => filter = Some(args.value("--filter")?.to_string()),
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            "--dot" => dot_stdout = true,
            "--no-stats" => with_stats = false,
            "--no-pushdown" => no_pushdown = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            input => inputs.push(input.to_string()),
        }
    }
    let [input_a, input_b] = inputs.as_slice() else {
        return Err("diff: expected exactly two inputs <a> <b>".to_string());
    };

    // Load both sides through the session layer (each side plans its
    // own route — two v2 stores both get pushdown), then narrow each
    // to its cid subset if requested (e.g. `--cid-a s --cid-b f`
    // splits one ior-ssf-fpp log into the SSF and FPP runs).
    let load_side = |input: &str, cid: &Option<String>, side: &str| -> Result<Session, String> {
        let mut session = open_session(
            input,
            filter.as_deref(),
            &map,
            no_pushdown,
            analysis_columns(),
            policy,
        )?;
        report_pushdown(&session, &format!("{side}: "));
        if let Some(cid) = cid {
            session = session.select_cid(cid, side).map_err(|e| e.to_string())?;
        }
        Ok(session)
    };
    let session_a = load_side(input_a, &cid_a, "A")?;
    let session_b = load_side(input_b, &cid_b, "B")?;

    // One mapping pass per side serves both the DFG and the statistics
    // layer (the sessions carry the `--map` choice).
    let mapped_a = session_a.mapped();
    let mapped_b = session_b.mapped();
    let dfg_a = Dfg::from_mapped(&mapped_a);
    let dfg_b = Dfg::from_mapped(&mapped_b);
    let diff = st_core::diff::diff(&dfg_a, &dfg_b);

    let options = st_core::render::RenderOptions {
        graph_name: "DFG diff".to_string(),
        show_stats: false,
        ..Default::default()
    };
    let dot =
        (out.is_some() || dot_stdout).then(|| st_core::render::render_diff_dot(&diff, &options));
    if let (Some(path), Some(dot)) = (&out, &dot) {
        std::fs::write(path, dot).map_err(|e| e.to_string())?;
        eprintln!("wrote {}", path.display());
    }
    if dot_stdout {
        emit(dot.as_deref().unwrap_or_default());
    } else {
        emit(&st_core::render::render_diff_report(&diff));
        if with_stats {
            let stats_a = IoStatistics::compute(&mapped_a);
            let stats_b = IoStatistics::compute(&mapped_b);
            emit(&st_core::render::render_diff_stats(
                &diff, &stats_a, &stats_b,
            ));
        }
    }
    Ok(())
}

/// What `query` writes for each group.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EmitMode {
    Dfg,
    Stats,
    Events,
    Store,
}

impl EmitMode {
    fn parse(s: &str) -> Result<EmitMode, String> {
        Ok(match s {
            "dfg" => EmitMode::Dfg,
            "stats" => EmitMode::Stats,
            "events" => EmitMode::Events,
            "store" => EmitMode::Store,
            other => {
                return Err(format!(
                    "unknown --emit mode {other:?} (dfg, stats, events, store)"
                ))
            }
        })
    }

    fn extension(&self) -> &'static str {
        match self {
            EmitMode::Dfg => "dot",
            EmitMode::Stats => "txt",
            EmitMode::Events => "tsv",
            EmitMode::Store => "stlog",
        }
    }
}

/// Turns a group key (a file path, pid, …) into a safe file stem,
/// unique within `used`: distinct keys that sanitize identically (e.g.
/// `/data/x+y` and `/data/x,y`) get `-2`, `-3`, … suffixes instead of
/// silently overwriting each other's output files.
fn sanitize_group_key(key: &str, used: &mut std::collections::HashSet<String>) -> String {
    let stem: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let trimmed = stem.trim_matches('_');
    let base = if trimmed.is_empty() { "group" } else { trimmed };
    let mut candidate = base.to_string();
    let mut n = 1usize;
    while !used.insert(candidate.clone()) {
        n += 1;
        candidate = format!("{base}-{n}");
    }
    candidate
}

fn cmd_query(tokens: &[String], policy: Policy) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut input: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut then_filters: Vec<String> = Vec::new();
    let mut group_by: Option<st_query::GroupKey> = None;
    let mut emit_mode = EmitMode::Dfg;
    let mut map = MapChoice::TopDirs(2);
    let mut explicit_map = false;
    let mut threads = 0usize;
    let mut no_pushdown = false;
    let mut out: Option<PathBuf> = None;
    while let Some(tok) = args.next() {
        match tok {
            "--filter" => filter = Some(args.value("--filter")?.to_string()),
            "--then-filter" => then_filters.push(args.value("--then-filter")?.to_string()),
            "--group-by" => {
                let spec = args.value("--group-by")?;
                group_by = Some(st_query::GroupKey::parse(spec).ok_or(format!(
                    "unknown --group-by key {spec:?} (file, pid, cid, host)"
                ))?);
            }
            "--emit" => emit_mode = EmitMode::parse(args.value("--emit")?)?,
            "--map" => {
                explicit_map = true;
                map = MapChoice::parse(args.value("--map")?)?;
            }
            "--threads" => {
                threads = args
                    .value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?
            }
            "--no-pushdown" => no_pushdown = true,
            "-o" => out = Some(PathBuf::from(args.value("-o")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional => {
                if let Some(first) = &input {
                    return Err(format!(
                        "query: expected exactly one <input>, got {first:?} and {positional:?}"
                    ));
                }
                input = Some(positional.to_string());
            }
        }
    }
    let input = input.ok_or("query: missing <input>")?;
    if emit_mode == EmitMode::Store && out.is_none() {
        return Err("query: --emit store requires -o <path>".to_string());
    }
    // Events and store emission are mapping-free; an explicit --map
    // would be silently ignored, so reject it (same policy as the
    // parse-flag conflicts).
    if explicit_map && matches!(emit_mode, EmitMode::Events | EmitMode::Store) {
        return Err(
            "query: --map has no effect with --emit events|store (raw events, no activity \
             mapping); drop --map or emit dfg/stats"
                .to_string(),
        );
    }
    // Re-querying rides the pushdown route (the cache sits under the
    // pruning reader); with pushdown disabled the refinements could
    // only re-scan from scratch, so reject the contradiction up front.
    if !then_filters.is_empty() && no_pushdown {
        return Err(
            "query: --then-filter re-queries through pushdown; drop --no-pushdown \
             (or run separate invocations)"
                .to_string(),
        );
    }

    // The session plans the route: predicate pushdown on v2 stores
    // (only the blocks and columns the filter + emit mode need are
    // decoded, surviving blocks decode on the worker pool), full load +
    // parallel scan everywhere else. Either route yields exactly the
    // matching event set.
    let columns = match emit_mode {
        EmitMode::Store => ColumnSet::ALL,
        // DFG/stats/events never look at requested/offset.
        _ => analysis_columns(),
    };
    let mut base_pred = filter
        .as_deref()
        .map(|expr| st_query::parse_expr(expr).map_err(|e| format!("--filter: {e}")))
        .transpose()?;
    let mut inspector = Inspector::open(&input)
        .map_err(|e| e.to_string())?
        .map_boxed(map.build())
        .pushdown(!no_pushdown)
        .columns(columns)
        .threads(threads)
        .recovery(policy.recovery())
        .deny_warnings(policy.deny_warnings)
        .requery(!then_filters.is_empty());
    if let Some(pred) = &base_pred {
        inspector = inspector.filter(pred.clone());
    }
    let mut session = inspector.session().map_err(|e| e.to_string())?;
    report_session(&session);
    eprintln!(
        "{} of {} events match ({} of {} cases)",
        session.events_matched(),
        session.events_total(),
        session.cases_matched(),
        session.cases_total()
    );
    report_pushdown(&session, "");

    // Iterative narrowing: each --then-filter conjoins its expression
    // and re-queries the still-open container through the decoded-block
    // cache. `refilter` takes the full replacement predicate, so the
    // running conjunction is rebuilt here and handed over whole.
    for expr in &then_filters {
        let pred = st_query::parse_expr(expr).map_err(|e| format!("--then-filter: {e}"))?;
        let combined = match base_pred.take() {
            Some(prev) => prev.and(pred),
            None => pred,
        };
        base_pred = Some(combined.clone());
        session = session.refilter(combined).map_err(|e| e.to_string())?;
        report_session(&session);
        eprintln!(
            "then-filter {expr}: {} of {} events match ({} of {} cases)",
            session.events_matched(),
            session.events_total(),
            session.cases_matched(),
            session.cases_total()
        );
        report_pushdown(&session, "");
    }
    if session.log().is_empty() {
        return Err("no events match the filter".to_string());
    }

    // Group-by explodes the slice into a DFG family; without it the
    // whole slice is one unnamed group.
    let view = session.view();
    let groups: Vec<(String, st_model::LogView<'_>)> = match group_by {
        Some(key) => st_query::group_by(&view, key),
        None => vec![(String::new(), view)],
    };
    let multi = groups.len() > 1 || (groups.len() == 1 && !groups[0].0.is_empty());

    // One mapping pass over the session's log serves every projection.
    let mapped =
        (emit_mode != EmitMode::Store && emit_mode != EmitMode::Events).then(|| session.mapped());

    // With `-o` and multiple groups, the path is a directory (one file
    // per group); with a single group it is the output file itself.
    let out_dir = match (&out, multi) {
        (Some(path), true) => {
            std::fs::create_dir_all(path).map_err(|e| e.to_string())?;
            Some(path.clone())
        }
        _ => None,
    };

    let snap = session.log().snapshot();
    let mut used_stems = std::collections::HashSet::new();
    for (key, group) in &groups {
        let body = match emit_mode {
            EmitMode::Dfg => {
                st_core::render::render_dfg_dot(mapped.as_ref().expect("mapped for dfg"), group)
            }
            EmitMode::Stats => st_core::render::render_stats_text(
                mapped.as_ref().expect("mapped for stats"),
                group,
            ),
            EmitMode::Events => st_core::render::render_events_tsv(group, &snap),
            EmitMode::Store => String::new(),
        };

        match (&out, &out_dir) {
            // Multiple groups into a directory.
            (_, Some(dir)) => {
                let path = dir.join(format!(
                    "{}.{}",
                    sanitize_group_key(key, &mut used_stems),
                    emit_mode.extension()
                ));
                if emit_mode == EmitMode::Store {
                    write_store(&group.to_event_log(), &path).map_err(|e| e.to_string())?;
                } else {
                    std::fs::write(&path, &body).map_err(|e| e.to_string())?;
                }
                eprintln!("wrote {}", path.display());
            }
            // Single output file.
            (Some(path), None) => {
                if emit_mode == EmitMode::Store {
                    write_store(&group.to_event_log(), path).map_err(|e| e.to_string())?;
                } else {
                    std::fs::write(path, &body).map_err(|e| e.to_string())?;
                }
                eprintln!("wrote {}", path.display());
            }
            // Stdout, with a group header when exploding.
            (None, None) => {
                if multi {
                    let comment = if emit_mode == EmitMode::Dfg {
                        "//"
                    } else {
                        "#"
                    };
                    emit(&format!("{comment} group: {key}\n"));
                }
                emit(&body);
            }
        }
    }
    Ok(())
}

/// At most this many per-block loss lines are printed; the rest are
/// summarized (same flood policy as the parser's warning cap).
const FSCK_LOSS_CAP: usize = 100;

/// `serve -o <store>` — run `stinspectd`, the live multi-tenant
/// ingest + query daemon, until SIGTERM/SIGINT or `POST /shutdown`.
/// Prints the bound address (ephemeral ports resolve here), then
/// blocks; shutdown drains in-flight connections and finishes the
/// container, so the store is always fsck-clean afterwards.
fn cmd_serve(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut store: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut block_events: Option<usize> = None;
    let mut checkpoint_cases: Option<usize> = None;
    let parse_n = |flag: &str, v: &str| -> Result<usize, String> {
        v.parse()
            .map_err(|_| format!("serve: {flag} takes a positive integer, got {v:?}"))
    };
    while let Some(tok) = args.next() {
        match tok {
            "-o" | "--store" => store = Some(PathBuf::from(args.value("-o")?)),
            "--addr" => addr = Some(args.value("--addr")?.to_string()),
            "--max-conns" => max_conns = Some(parse_n("--max-conns", args.value("--max-conns")?)?),
            "--block-events" => {
                block_events = Some(parse_n("--block-events", args.value("--block-events")?)?)
            }
            "--checkpoint-cases" => {
                checkpoint_cases = Some(parse_n(
                    "--checkpoint-cases",
                    args.value("--checkpoint-cases")?,
                )?)
            }
            flag if flag.starts_with('-') => return Err(format!("serve: unknown flag {flag}")),
            positional => {
                return Err(format!(
                    "serve: unexpected argument {positional:?} (the store is -o <path>)"
                ))
            }
        }
    }
    let store = store.ok_or("serve: missing -o <store>")?;
    let mut config = st_serve::ServeConfig::new(&store);
    if let Some(a) = addr {
        config.addr = a;
    }
    if let Some(n) = max_conns {
        config.max_conns = n.max(1);
    }
    if let Some(n) = block_events {
        config.block_events = n.max(1);
    }
    if let Some(n) = checkpoint_cases {
        config.checkpoint_cases = n.max(1);
    }
    config.handle_signals = true;
    #[cfg(unix)]
    st_serve::sig::install();
    let handle = st_serve::Daemon::start(config).map_err(|e| format!("serve: {e}"))?;
    emit(&format!(
        "stinspectd listening on http://{} (store: {})\n",
        handle.addr(),
        store.display()
    ));
    eprintln!("stop with SIGTERM, Ctrl-C, or POST /shutdown");
    handle.join().map_err(|e| format!("serve: {e}"))
}

/// `fsck <store>` — container health report with its own exit codes:
/// 0 clean, 2 usage, 3 degraded, 4 unreadable.
fn cmd_fsck(tokens: &[String]) -> ExitCode {
    let mut args = Args::new(tokens);
    let mut store: Option<String> = None;
    while let Some(tok) = args.next() {
        match tok {
            flag if flag.starts_with('-') => {
                eprintln!("stinspect: fsck: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => {
                if store.is_some() {
                    eprintln!("stinspect: fsck: expected exactly one <store>");
                    return ExitCode::from(2);
                }
                store = Some(path.to_string());
            }
        }
    }
    let Some(store) = store else {
        eprintln!("stinspect: fsck: missing <store>\n{USAGE}");
        return ExitCode::from(2);
    };
    // Vet through the seek reader so fsck never slurps the container:
    // each block is fetched by its exact extent. v1 containers have no
    // directory to seek through — those fall back to the resident
    // salvage reader.
    let path = std::path::Path::new(&store);
    let report = match st_store::open_salvage_seek(path) {
        Ok(s) => s.report,
        Err(st_store::StoreError::Corrupt(st_store::CorruptKind::V1Seek)) => {
            match st_store::open_salvage(path) {
                Ok(s) => s.report,
                Err(e) => {
                    eprintln!("stinspect: fsck: {store}: unreadable: {e}");
                    return ExitCode::from(4);
                }
            }
        }
        Err(e) => {
            eprintln!("stinspect: fsck: {store}: unreadable: {e}");
            return ExitCode::from(4);
        }
    };
    let r = &report;
    let mut out = format!("fsck {store}: STLOG v{}\n", r.version);
    out.push_str(&format!("  directory:  {}\n", r.directory));
    out.push_str(&format!(
        "  blocks:     {} (section framing)\n",
        r.blocks_section
    ));
    out.push_str(&format!(
        "  cases:      {}{}\n",
        r.cases,
        if r.cases_lost > 0 {
            format!(" ({} directory entries unparseable)", r.cases_lost)
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "  recovered:  {}/{} blocks, {}/{} events ({:.1}% recoverable)\n",
        r.blocks_recovered,
        r.blocks_total,
        r.events_recovered,
        r.events_total,
        100.0 * r.recoverable_fraction()
    ));
    if r.orphan_blocks > 0 {
        out.push_str(&format!(
            "  orphans:    {} block frame(s) ({} bytes) past directory knowledge\n",
            r.orphan_blocks, r.orphan_bytes
        ));
    }
    if r.unaccounted_bytes > 0 {
        out.push_str(&format!(
            "  unaccounted: {} byte(s) not part of any section or frame\n",
            r.unaccounted_bytes
        ));
    }
    if !r.losses.is_empty() {
        let shown = r.losses.len().min(FSCK_LOSS_CAP);
        out.push_str(&format!(
            "  warnings:   {} block-loss warning(s) ({shown} shown, {} suppressed)\n",
            r.losses.len(),
            r.losses.len() - shown
        ));
    }
    for loss in r.losses.iter().take(FSCK_LOSS_CAP) {
        out.push_str(&format!("  loss:       {loss}\n"));
    }
    if r.losses.len() > FSCK_LOSS_CAP {
        out.push_str(&format!(
            "  loss:       ... and {} more block(s)\n",
            r.losses.len() - FSCK_LOSS_CAP
        ));
    }
    match r.verdict() {
        Verdict::Clean => {
            out.push_str("verdict: clean\n");
            emit(&out);
            ExitCode::SUCCESS
        }
        Verdict::Degraded => {
            out.push_str(&format!(
                "verdict: degraded ({:.1}% of events recoverable)\n",
                100.0 * r.recoverable_fraction()
            ));
            emit(&out);
            ExitCode::from(3)
        }
    }
}

fn cmd_simulate(tokens: &[String]) -> Result<(), String> {
    let mut args = Args::new(tokens);
    let mut workload: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut paper = false;
    let mut emit_strace = false;
    while let Some(tok) = args.next() {
        match tok {
            "--out" => out = Some(PathBuf::from(args.value("--out")?)),
            "--paper" => paper = true,
            "--emit-strace" => emit_strace = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            name => workload = Some(name.to_string()),
        }
    }
    let workload = workload.ok_or("simulate: missing workload name")?;
    let out = out.ok_or("simulate: missing --out <dir>")?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    // The same table-driven backend `sim:` inputs resolve through.
    let log = st_source::sim::workload_log(&workload, paper).map_err(|e| e.to_string())?;
    let store_path = out.join(format!("{workload}.stlog"));
    write_store(&log, &store_path).map_err(|e| e.to_string())?;
    println!(
        "simulated {} cases / {} events -> {}",
        log.case_count(),
        log.total_events(),
        store_path.display()
    );
    if emit_strace {
        let trace_dir = out.join(format!("{workload}-traces"));
        let files = st_sim::emit_strace_dir(&log, &trace_dir).map_err(|e| e.to_string())?;
        println!(
            "emitted {} strace files into {}",
            files.len(),
            trace_dir.display()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_sanitization_is_collision_free() {
        let mut used = std::collections::HashSet::new();
        assert_eq!(sanitize_group_key("/data/x.h5", &mut used), "data_x.h5");
        // Distinct keys that sanitize identically get disambiguated, in
        // order, instead of silently sharing one output file.
        assert_eq!(sanitize_group_key("/data/x+y", &mut used), "data_x_y");
        assert_eq!(sanitize_group_key("/data/x,y", &mut used), "data_x_y-2");
        assert_eq!(sanitize_group_key("/data/x=y", &mut used), "data_x_y-3");
        // Keys with no safe characters still produce a stem.
        assert_eq!(sanitize_group_key("///", &mut used), "group");
        assert_eq!(sanitize_group_key("&&&", &mut used), "group-2");
    }
}
