//! End-to-end tests of the `stinspect` binary.

use std::path::PathBuf;
use std::process::Command;

fn stinspect() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stinspect"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stinspect-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = stinspect().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("stinspect"));
}

#[test]
fn unknown_command_fails() {
    let out = stinspect().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let out = stinspect().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn simulate_parse_dfg_pipeline() {
    let dir = tmpdir("pipeline");

    // simulate ls, with strace emission
    let out = stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .arg("--emit-strace")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("ls.stlog").is_file());
    let traces = dir.join("ls-traces");
    assert!(traces.is_dir());

    // parse the emitted traces back into a second container
    let parsed = dir.join("parsed.stlog");
    let out = stinspect()
        .arg("parse")
        .arg(&traces)
        .arg("-o")
        .arg(&parsed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 cases"));

    // dfg with partition coloring, written to a file
    let dot_path = dir.join("g.dot");
    let out = stinspect()
        .arg("dfg")
        .arg(&parsed)
        .args(["--color", "partition:a", "-o"])
        .arg(&dot_path)
        .arg("--summary")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("read\\n/usr/lib"));
    assert!(dot.contains("#d62728"), "red partition color expected");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("activity"), "{stdout}");

    // stats with a path filter (the full st-query expression syntax;
    // the old substring spelling is the glob `path~"*needle*"`)
    let out = stinspect()
        .arg("stats")
        .arg(&parsed)
        .args(["--filter", "path~\"*/etc*\""])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("read:/etc/locale.alias"), "{stdout}");
    assert!(!stdout.contains("/usr/lib"), "{stdout}");

    // timeline of a known activity
    let out = stinspect()
        .arg("timeline")
        .arg(&parsed)
        .arg("read:/usr/lib")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("timeline of"), "{stdout}");
    assert!(stdout.contains('#'), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_csv_and_dfg_min_edge() {
    let dir = tmpdir("csv");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ls.stlog");

    // CSV export: header + one row per activity, clean stdout.
    let out = stinspect()
        .arg("stats")
        .arg(&store)
        .arg("--csv")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("activity,events,"), "{stdout}");
    assert!(stdout.contains("read:/usr/lib,"), "{stdout}");
    // Header summary goes to stderr, not into the CSV.
    assert!(!stdout.contains("cases,"), "{stdout}");

    // Edge-frequency filtering drops rare relations from the DOT.
    let full = stinspect().arg("dfg").arg(&store).output().unwrap();
    let filtered = stinspect()
        .arg("dfg")
        .arg(&store)
        .args(["--min-edge", "6"])
        .output()
        .unwrap();
    assert!(full.status.success() && filtered.status.success());
    let full_edges = String::from_utf8_lossy(&full.stdout).matches("->").count();
    let filtered_edges = String::from_utf8_lossy(&filtered.stdout)
        .matches("->")
        .count();
    assert!(
        filtered_edges < full_edges,
        "filtered {filtered_edges} !< full {full_edges}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dfg_rejects_bad_color_mode() {
    let dir = tmpdir("badcolor");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = stinspect()
        .arg("dfg")
        .arg(dir.join("ls.stlog"))
        .args(["--color", "sparkles"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown color mode"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn timeline_unknown_activity_fails_cleanly() {
    let dir = tmpdir("tlmissing");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let out = stinspect()
        .arg("timeline")
        .arg(dir.join("ls.stlog"))
        .arg("write:/nonexistent")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no events map"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_simulated_ssf_vs_fpp() {
    let dir = tmpdir("diff");
    // Report mode on two in-memory simulated runs split out of the
    // ior-ssf-fpp workload by cid.
    let out = stinspect()
        .args([
            "diff",
            "sim:ior-ssf-fpp",
            "sim:ior-ssf-fpp",
            "--cid-a",
            "s",
            "--cid-b",
            "f",
            "--map",
            "site",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("DFG diff"), "{report}");
    assert!(report.contains("total-variation distance:"), "{report}");
    assert!(report.contains("changed edges"), "{report}");
    // Deterministic: a second run prints the identical report.
    let again = stinspect()
        .args([
            "diff",
            "sim:ior-ssf-fpp",
            "sim:ior-ssf-fpp",
            "--cid-a",
            "s",
            "--cid-b",
            "f",
            "--map",
            "site",
        ])
        .output()
        .unwrap();
    assert_eq!(out.stdout, again.stdout);

    // DOT mode, written to a file.
    let dot_path = dir.join("diff.dot");
    let out = stinspect()
        .args(["diff", "sim:ior-ssf-fpp", "sim:ior-ssf-fpp"])
        .args(["--cid-a", "s", "--cid-b", "f", "--map", "site", "-o"])
        .arg(&dot_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph \"DFG diff\""), "{dot}");
    assert!(dot.contains("#808080"), "shared edges gray: {dot}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_accepts_store_and_trace_dir_inputs() {
    let dir = tmpdir("diffinputs");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .arg("--emit-strace")
        .output()
        .unwrap();
    let store = dir.join("ls.stlog");
    let traces = dir.join("ls-traces");

    // Store vs strace directory of the same run: structurally identical.
    let out = stinspect()
        .arg("diff")
        .arg(&store)
        .arg(&traces)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("graphs are identical"), "{report}");
    assert!(
        report.contains("total-variation distance: 0.0000"),
        "{report}"
    );

    // cid selection inside one container: `ls` vs `ls -l`.
    let out = stinspect()
        .arg("diff")
        .arg(&store)
        .arg(&store)
        .args(["--cid-a", "a", "--cid-b", "b"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains("B-only"),
        "ls -l touches more files: {report}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_bad_inputs_fail_cleanly() {
    let out = stinspect()
        .args(["diff", "sim:nope", "sim:ls"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    let out = stinspect().args(["diff", "sim:ls"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two inputs"));

    let out = stinspect()
        .args(["diff", "sim:ls", "sim:ls", "--cid-a", "zzz"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no cases with cid"));
}

#[test]
fn parse_missing_directory_fails() {
    let out = stinspect()
        .args(["parse", "/nonexistent/traces", "-o", "/tmp/x.stlog"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn parse_rejects_flag_combinations_streaming_cannot_honor() {
    let dir = tmpdir("flagconflict");
    // --streaming reads line-at-a-time and cannot chunk within a file,
    // so an explicit --threads budget is rejected, not silently capped.
    let out = stinspect()
        .arg("parse")
        .arg(&dir)
        .args(["--streaming", "--threads", "8", "-o"])
        .arg(dir.join("x.stlog"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--streaming and --threads conflict"), "{err}");
    // --sequential pins the budget to one worker; an explicit --threads
    // contradicts it.
    let out = stinspect()
        .arg("parse")
        .arg(&dir)
        .args(["--sequential", "--threads", "2", "-o"])
        .arg(dir.join("x.stlog"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sequential and --threads conflict"), "{err}");
    // Each flag alone stays valid (empty dir parses to an empty store).
    for flags in [
        vec!["--streaming"],
        vec!["--sequential"],
        vec!["--threads", "2"],
    ] {
        let out = stinspect()
            .arg("parse")
            .arg(&dir)
            .args(&flags)
            .arg("-o")
            .arg(dir.join("ok.stlog"))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{flags:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parse_rejects_loader_flags_on_non_text_inputs() {
    // Loader flags shape strace text loading; on a store or sim: input
    // they would be silently inert, so the session layer rejects them.
    let dir = tmpdir("inertflags");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ls.stlog");
    for flags in [
        vec!["--streaming"],
        vec!["--sequential"],
        vec!["--strict-names"],
        vec!["--threads", "4"],
    ] {
        let out = stinspect()
            .arg("parse")
            .arg(&store)
            .args(&flags)
            .arg("-o")
            .arg(dir.join("out.stlog"))
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flags:?} accepted on a store input");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("strace text"), "{flags:?}: {err}");
    }
    // Without the flags, re-ingesting a store is fine.
    let out = stinspect()
        .arg("parse")
        .arg(&store)
        .arg("-o")
        .arg(dir.join("out.stlog"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sub_header_truncation_stays_on_the_store_route() {
    // A container cut below its 12-byte header must fail as a corrupt
    // store, not silently parse as empty strace text.
    let dir = tmpdir("subheader");
    let cut = dir.join("cut.stlog");
    std::fs::write(&cut, b"STLOG2\0\0\x02").unwrap();
    for cmd in [vec!["stats"], vec!["query", "--emit", "events"]] {
        let mut argv = vec![cmd[0]];
        argv.push(cut.to_str().unwrap());
        argv.extend(&cmd[1..]);
        let out = stinspect().args(&argv).output().unwrap();
        assert!(!out.status.success(), "{argv:?} accepted a truncated store");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("magic") || err.contains("corrupt") || err.contains("checksum"),
            "{argv:?}: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_group_by_file_emits_one_dot_per_file() {
    // The paper's per-file narrowing on the simulated SSF run: every
    // distinct file gets its own DFG.
    let out = stinspect()
        .args([
            "query",
            "sim:ssf",
            "--filter",
            "path~\"*\"",
            "--group-by",
            "file",
            "--emit",
            "dfg",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let headers = stdout.matches("// group: ").count();
    let graphs = stdout.matches("digraph").count();
    assert!(headers > 1, "expected one DOT per file: {stdout}");
    assert_eq!(headers, graphs, "{stdout}");
    // The shared SSF test file is one of the groups.
    assert!(
        stdout.contains("// group: /p/scratch/user1/ssf/test"),
        "{stdout}"
    );
    // Deterministic across runs.
    let again = stinspect()
        .args([
            "query",
            "sim:ssf",
            "--filter",
            "path~\"*\"",
            "--group-by",
            "file",
            "--emit",
            "dfg",
        ])
        .output()
        .unwrap();
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn query_filter_store_roundtrip_and_events() {
    let dir = tmpdir("query");
    // Slice the simulated ls run to reads only and store the slice.
    let slice = dir.join("reads.stlog");
    let out = stinspect()
        .args([
            "query",
            "sim:ls",
            "--filter",
            "class=read",
            "--emit",
            "store",
            "-o",
        ])
        .arg(&slice)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("events match"));

    // The stored slice feeds the normal pipeline and contains no writes.
    let out = stinspect()
        .arg("stats")
        .arg(&slice)
        .args(["--map", "call"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("read"), "{stdout}");
    assert!(!stdout.contains("write"), "{stdout}");

    // Event emission: TSV with a header, only failing calls when asked
    // (the SSF run's shared-library openat storm fails; `ls` has no
    // failures).
    let out = stinspect()
        .args([
            "query", "sim:ssf", "--filter", "ok=false", "--emit", "events",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("cid\thost\trid\tpid\tcall\tstart\tdur\tpath\tsize\tok"),
        "{stdout}"
    );
    assert!(lines.clone().count() > 0);
    assert!(lines.all(|l| l.ends_with("false")), "{stdout}");

    // Per-group stats to stdout.
    let out = stinspect()
        .args(["query", "sim:ls", "--group-by", "cid", "--emit", "stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# group: a"), "{stdout}");
    assert!(stdout.contains("# group: b"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_pushdown_matches_full_load_and_reports_pruning() {
    let dir = tmpdir("pushdown");
    stinspect()
        .args(["simulate", "ior-ssf-fpp", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ior-ssf-fpp.stlog");
    assert!(store.is_file());

    for (filter, emit) in [
        ("ok=false", "events"),
        ("cid=s class=write", "events"),
        ("path~\"*/ssf/*\" size>=512k", "stats"),
        ("t=[0s,50ms)", "events"),
    ] {
        let pushed = stinspect()
            .arg("query")
            .arg(&store)
            .args(["--filter", filter, "--emit", emit])
            .output()
            .unwrap();
        let full = stinspect()
            .arg("query")
            .arg(&store)
            .args(["--filter", filter, "--emit", emit, "--no-pushdown"])
            .output()
            .unwrap();
        assert!(
            pushed.status.success(),
            "{}",
            String::from_utf8_lossy(&pushed.stderr)
        );
        assert!(
            full.status.success(),
            "{}",
            String::from_utf8_lossy(&full.stderr)
        );
        // Same results byte-for-byte on stdout…
        assert_eq!(pushed.stdout, full.stdout, "filter {filter:?}");
        // …and the same match line; only the pushdown path reports a
        // pruning summary.
        let pushed_err = String::from_utf8_lossy(&pushed.stderr);
        let full_err = String::from_utf8_lossy(&full.stderr);
        assert_eq!(
            pushed_err.lines().next(),
            full_err.lines().next(),
            "filter {filter:?}"
        );
        assert!(pushed_err.contains("pushdown: pruned"), "{pushed_err}");
        // The v2 seek route accounts disk I/O alongside decode work.
        assert!(pushed_err.contains("bytes off disk"), "{pushed_err}");
        assert!(!full_err.contains("pushdown:"), "{full_err}");
    }

    // The cid filter prunes whole cases without touching their bytes.
    let out = stinspect()
        .arg("query")
        .arg(&store)
        .args(["--filter", "cid=s", "--emit", "events"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("(8 of 16 cases whole)"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_then_filter_requeries_from_cache() {
    let dir = tmpdir("thenfilter");
    stinspect()
        .args(["simulate", "ior-ssf-fpp", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ior-ssf-fpp.stlog");

    // One invocation narrowing in two steps must emit exactly what a
    // single query with the conjoined filter emits…
    let narrowed = stinspect()
        .arg("query")
        .arg(&store)
        .args([
            "--filter",
            "class=write",
            "--then-filter",
            "size>=512k",
            "--emit",
            "events",
        ])
        .output()
        .unwrap();
    let direct = stinspect()
        .arg("query")
        .arg(&store)
        .args(["--filter", "class=write size>=512k", "--emit", "events"])
        .output()
        .unwrap();
    assert!(
        narrowed.status.success(),
        "{}",
        String::from_utf8_lossy(&narrowed.stderr)
    );
    assert_eq!(narrowed.stdout, direct.stdout);

    // …while the refinement itself reads nothing off disk: every block
    // the broad pass decoded is served from the cache.
    let stderr = String::from_utf8_lossy(&narrowed.stderr);
    assert!(
        stderr.contains("then-filter size>=512k:"),
        "refinement match line missing: {stderr}"
    );
    let requery: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("requery:"))
        .collect();
    assert_eq!(requery.len(), 2, "one cache line per query: {stderr}");
    assert!(
        requery[0].starts_with("requery: 0 of"),
        "cold pass is all misses: {stderr}"
    );
    assert!(
        !requery[1].starts_with("requery: 0 of"),
        "warm pass hits the cache: {stderr}"
    );
    let warm = stderr
        .lines()
        .skip_while(|l| !l.starts_with("then-filter"))
        .find(|l| l.starts_with("pushdown:"))
        .expect("warm pushdown summary");
    assert!(
        warm.contains("read 0 bytes off disk"),
        "refinement re-read the container: {warm}"
    );

    // --then-filter contradicts --no-pushdown (there is no cache to
    // re-query through on the full-scan route).
    let out = stinspect()
        .arg("query")
        .arg(&store)
        .args([
            "--filter",
            "class=write",
            "--then-filter",
            "ok=true",
            "--no-pushdown",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--then-filter"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_emit_store_writes_v2_and_requeries_stably() {
    // query → store → query: the emitted container is the current (v2)
    // format and a re-query over it returns the same events.
    let dir = tmpdir("emitstore");
    let slice = dir.join("slice.stlog");
    let out = stinspect()
        .args([
            "query",
            "sim:ior-ssf-fpp",
            "--filter",
            "class=write",
            "--emit",
            "store",
            "-o",
        ])
        .arg(&slice)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let magic = &std::fs::read(&slice).unwrap()[..8];
    assert_eq!(magic, b"STLOG2\0\0", "emitted store is not v2");

    let direct = stinspect()
        .args([
            "query",
            "sim:ior-ssf-fpp",
            "--filter",
            "class=write",
            "--emit",
            "events",
        ])
        .output()
        .unwrap();
    let requeried = stinspect()
        .arg("query")
        .arg(&slice)
        .args(["--filter", "class=write", "--emit", "events"])
        .output()
        .unwrap();
    assert!(
        requeried.status.success(),
        "{}",
        String::from_utf8_lossy(&requeried.stderr)
    );
    assert_eq!(direct.stdout, requeried.stdout);
    // Inside the slice every event matches: nothing left to prune, and
    // the totals equal the slice's own size.
    let stderr = String::from_utf8_lossy(&requeried.stderr);
    assert!(stderr.contains("pushdown:"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_surfaces_store_corruption() {
    // A flipped byte inside the store must fail the query (checksum),
    // never return a silently wrong slice.
    let dir = tmpdir("corrupt");
    stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ls.stlog");
    let mut bytes = std::fs::read(&store).unwrap();
    let idx = bytes.len() - 9; // inside the last block body
    bytes[idx] ^= 0xFF;
    std::fs::write(&store, &bytes).unwrap();
    for flags in [&[][..], &["--no-pushdown"][..]] {
        let out = stinspect()
            .arg("query")
            .arg(&store)
            .args(["--filter", "true", "--emit", "events"])
            .args(flags)
            .output()
            .unwrap();
        assert!(!out.status.success(), "corrupt store accepted ({flags:?})");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("checksum") || stderr.contains("corrupt"),
            "{stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_group_by_into_directory() {
    let dir = tmpdir("querydir");
    let out_dir = dir.join("per-pid");
    let out = stinspect()
        .args([
            "query",
            "sim:ls",
            "--group-by",
            "pid",
            "--emit",
            "dfg",
            "-o",
        ])
        .arg(&out_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dots: Vec<_> = std::fs::read_dir(&out_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "dot"))
        .collect();
    assert!(dots.len() > 1, "one DOT per pid expected");
    for entry in dots {
        let text = std::fs::read_to_string(entry.path()).unwrap();
        assert!(text.starts_with("digraph"), "{}", entry.path().display());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_bad_usage_fails_cleanly() {
    // Malformed filter expression: the parse error surfaces.
    let out = stinspect()
        .args(["query", "sim:ls", "--filter", "frob=1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key"));

    // Unknown group key.
    let out = stinspect()
        .args(["query", "sim:ls", "--group-by", "color"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --group-by key"));

    // Store emission needs a target path.
    let out = stinspect()
        .args(["query", "sim:ls", "--emit", "store"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires -o"));

    // A filter nothing matches is an error, not empty output.
    let out = stinspect()
        .args(["query", "sim:ls", "--filter", "pid=999999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no events match"));

    // --map is meaningless for the mapping-free emits: rejected, not
    // silently ignored.
    let out = stinspect()
        .args(["query", "sim:ls", "--emit", "events", "--map", "site"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--map has no effect"));

    // An out-of-range pid is a parse error, not a silent truncation.
    let out = stinspect()
        .args(["query", "sim:ls", "--filter", "pid=4294967297"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsigned 32-bit"));

    // A second positional input is rejected, not silently preferred.
    let out = stinspect()
        .args(["query", "sim:ls", "sim:ssf"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one <input>"));
}

#[test]
fn query_time_windows_are_trace_relative() {
    // Simulated traces start at the wall-clock epoch 09:00:00, so a
    // relative window must still match (it is rebased to the first
    // event), and the equivalent absolute window selects the same slice.
    let relative = stinspect()
        .args([
            "query",
            "sim:ls",
            "--filter",
            "t=[0s,2s)",
            "--emit",
            "events",
        ])
        .output()
        .unwrap();
    assert!(
        relative.status.success(),
        "{}",
        String::from_utf8_lossy(&relative.stderr)
    );
    let absolute = stinspect()
        .args([
            "query",
            "sim:ls",
            "--filter",
            "t=[09:00:00,09:00:02)",
            "--emit",
            "events",
        ])
        .output()
        .unwrap();
    assert!(absolute.status.success());
    assert_eq!(relative.stdout, absolute.stdout);
    // Mixing the two endpoint forms is a parse error.
    let out = stinspect()
        .args(["query", "sim:ls", "--filter", "t=[0s,09:00:02)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mixes a relative and an absolute"));
}

#[test]
fn diff_pushes_filters_into_v2_stores() {
    // diff on v2 stores routes a selective --filter through predicate
    // pushdown (pruning summary on stderr, one per side) and produces
    // output identical to the forced full-load path.
    let dir = tmpdir("diffpush");
    stinspect()
        .args(["simulate", "ior-ssf-fpp", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    let store = dir.join("ior-ssf-fpp.stlog");
    assert!(store.is_file());
    // Re-encode with small blocks: the simulated run is tiny, so the
    // default 4096-event blocks leave one block per case and nothing
    // for the zone maps to discriminate. Paper-scale stores carry many
    // blocks per case; 64-event blocks model that here.
    {
        let log = st_store::StoreReader::open(&store).unwrap().read().unwrap();
        std::fs::write(&store, st_store::to_bytes_blocked(&log, 64).unwrap()).unwrap();
    }
    let argv = |extra: &[&str]| {
        let mut out = stinspect();
        out.arg("diff")
            .arg(&store)
            .arg(&store)
            .args(["--cid-a", "s", "--cid-b", "f", "--map", "site"])
            .args(["--filter", "class=write size>=512k"])
            .args(extra);
        out.output().unwrap()
    };
    let pushed = argv(&[]);
    let full = argv(&["--no-pushdown"]);
    assert!(
        pushed.status.success(),
        "{}",
        String::from_utf8_lossy(&pushed.stderr)
    );
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    assert_eq!(pushed.stdout, full.stdout);
    let pushed_err = String::from_utf8_lossy(&pushed.stderr);
    assert_eq!(
        pushed_err.matches("pushdown: pruned").count(),
        2,
        "one pruning summary per diff side: {pushed_err}"
    );
    // The selective filter must actually skip blocks.
    assert!(!pushed_err.contains("pruned 0/"), "{pushed_err}");
    assert!(
        !String::from_utf8_lossy(&full.stderr).contains("pushdown:"),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );

    // The other rewritten subcommands take the same route.
    for argv in [
        vec![
            "stats",
            store.to_str().unwrap(),
            "--filter",
            "class=write size>=512k",
        ],
        vec![
            "dfg",
            store.to_str().unwrap(),
            "--filter",
            "class=write size>=512k",
        ],
    ] {
        let out = stinspect().args(&argv).output().unwrap();
        assert!(out.status.success(), "{argv:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("pushdown: pruned"), "{argv:?}: {stderr}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_report_includes_stats_layer() {
    let out = stinspect()
        .args(["diff", "sim:ssf", "sim:fpp", "--map", "site"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains("per-activity statistics (A → B):"),
        "{report}"
    );
    assert!(report.contains("Δ Load"), "{report}");
    assert!(report.contains("MB/s"), "{report}");

    // --no-stats restores the purely structural report.
    let out = stinspect()
        .args(["diff", "sim:ssf", "sim:fpp", "--map", "site", "--no-stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(!report.contains("per-activity statistics"), "{report}");
}

/// Builds a v2 store for `sim:ls` in `dir` and returns its path.
fn build_store(dir: &PathBuf) -> PathBuf {
    let out = stinspect()
        .args(["simulate", "ls", "--out"])
        .arg(dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join("ls.stlog")
}

/// Flips one bit inside the first block body (see the matrix test for
/// the layout arithmetic), producing a degraded-but-salvageable store.
fn corrupt_store(store: &PathBuf, out: &PathBuf) {
    let mut image = std::fs::read(store).unwrap();
    let mut off = 12usize;
    for _ in 0..2 {
        let len = u64::from_le_bytes(image[off..off + 8].try_into().unwrap()) as usize;
        off += 8 + len + 4;
    }
    off += 8;
    image[off + 3] ^= 0x08;
    std::fs::write(out, image).unwrap();
}

#[test]
fn fsck_exit_codes_distinguish_clean_degraded_unreadable() {
    let dir = tmpdir("fsck");
    let store = build_store(&dir);

    // Clean container: exit 0, verdict line on stdout.
    let out = stinspect().arg("fsck").arg(&store).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict: clean"), "{text}");

    // Degraded container: exit 3, loss and verdict lines.
    let bad = dir.join("bad.stlog");
    corrupt_store(&store, &bad);
    let out = stinspect().arg("fsck").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict: degraded"), "{text}");
    assert!(text.contains("events lost"), "{text}");
    assert!(text.contains("recoverable"), "{text}");

    // Unreadable: exit 4, reason on stderr.
    let junk = dir.join("junk.stlog");
    std::fs::write(&junk, b"not a container at all").unwrap();
    let out = stinspect().arg("fsck").arg(&junk).output().unwrap();
    assert_eq!(out.status.code(), Some(4));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unreadable"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Usage error: exit 2.
    let out = stinspect().arg("fsck").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salvage_flag_recovers_and_deny_warnings_promotes() {
    let dir = tmpdir("salvage-flag");
    let store = build_store(&dir);
    let bad = dir.join("bad.stlog");
    corrupt_store(&store, &bad);

    // Strict mode rejects the corrupted store.
    let out = stinspect().args(["stats"]).arg(&bad).output().unwrap();
    assert!(!out.status.success());

    // --salvage recovers the surviving blocks and reports the loss.
    let out = stinspect()
        .args(["--salvage", "stats"])
        .arg(&bad)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("salvage:"), "{err}");
    assert!(err.contains("events lost"), "{err}");

    // --deny-warnings turns that loss warning into a nonzero exit.
    let out = stinspect()
        .args(["--salvage", "--deny-warnings", "stats"])
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("denied"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // On a clean store --salvage and --deny-warnings are inert.
    let out = stinspect()
        .args(["--salvage", "--deny-warnings", "stats"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_parse_leaves_no_partial_container() {
    // Store writes go to a same-directory temp file and rename into
    // place atomically. Simulate an interrupted final step by making
    // the destination un-renameable (a directory): the write must fail,
    // the destination must be untouched, and no temp file may remain.
    let dir = tmpdir("atomic");
    let target = dir.join("out.stlog");
    std::fs::create_dir_all(&target).unwrap();
    let sentinel = target.join("keep.txt");
    std::fs::write(&sentinel, b"still here").unwrap();

    let out = stinspect()
        .args(["parse", "sim:ls", "-o"])
        .arg(&target)
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Destination untouched, sentinel intact.
    assert!(target.is_dir());
    assert_eq!(std::fs::read(&sentinel).unwrap(), b"still here");

    // No temp, spill, or partial files anywhere in the output
    // directory. The streaming writer encodes blocks into a
    // same-directory `.{name}.spill.{pid}` scratch file before the
    // final splice — a failed finish must remove that too, not just
    // the rename temp.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n != "out.stlog")
        .collect();
    assert!(
        leftovers.is_empty(),
        "leftover scratch files (spill/tmp must be cleaned up on failure): {leftovers:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_daemon_end_to_end_matches_offline_query_and_fscks_clean() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};

    let dir = tmpdir("serve");
    let store = dir.join("live.stlog2");
    let mut child = stinspect()
        .args(["serve", "-o"])
        .arg(&store)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // The daemon prints its resolved ephemeral address before serving.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("banner carries the bound address")
        .to_string();

    // Ingest one strace stream over a plain TCP connection.
    let body = "\
9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, \"...\", 832) = 832 <0.000203>
9054  08:55:54.156640 read(3</usr/lib/x86_64-linux-gnu/libc.so.6>, \"...\", 832) = 832 <0.000079>
9054  08:55:54.176260 write(1</dev/pts/7>, \"...\", 50) = 50 <0.000111>
";
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    write!(
        s,
        "POST /ingest/a_host1_9042.st HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

    // The HTTP query body is byte-identical to the offline CLI query
    // on the sealed container with the same filter.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    write!(
        s,
        "GET /query?filter=call%3Dread&emit=events HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    .unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let split = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    let http_body = resp[split + 4..].to_vec();

    let out = stinspect()
        .arg("query")
        .arg(&store)
        .args(["--filter", "call=read", "--emit", "events"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&http_body),
        String::from_utf8_lossy(&out.stdout),
        "HTTP body and offline query stdout must match byte-for-byte"
    );

    // Graceful shutdown over HTTP; the daemon exits 0 and the sealed
    // container passes fsck cleanly.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    write!(s, "POST /shutdown HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let status = child.wait().unwrap();
    assert!(status.success());

    let out = stinspect().arg("fsck").arg(&store).output().unwrap();
    assert!(
        out.status.success(),
        "fsck after graceful shutdown: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
