//! Input-kind × subcommand matrix: every analysis subcommand must
//! accept every input kind — a v1 store file, a v2 store file, a
//! directory of strace files, a single strace file, and a `sim:` spec —
//! and produce byte-identical stdout for the same underlying run.
//!
//! The golden files under `tests/golden/matrix_*.golden` were captured
//! from the pre-`Inspector`-redesign binary (each subcommand reading a
//! v2 store through its then-private resolution path), so they also pin
//! that the session-API rewrite changed no output byte. Regenerate after
//! intentional format changes with `UPDATE_GOLDEN=1 cargo test -p st-cli
//! --test matrix`.

use std::path::{Path, PathBuf};
use std::process::Command;

use st_store::{to_bytes_v1, StoreReader};

fn stinspect() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stinspect"))
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("matrix_{name}.golden"))
}

/// Builds the shared fixture set: the simulated `ls` run as a v2 store,
/// a v1 store, a directory of strace files, and a single strace file.
struct Fixture {
    dir: PathBuf,
    v2: PathBuf,
    v1: PathBuf,
    traces: PathBuf,
    one_file: PathBuf,
}

impl Fixture {
    fn build(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("stinspect-matrix-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = stinspect()
            .args(["simulate", "ls", "--out"])
            .arg(&dir)
            .arg("--emit-strace")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let v2 = dir.join("ls.stlog");
        let traces = dir.join("ls-traces");
        // The v1 container is written through the legacy encoder from the
        // identical log, so its event set matches the other kinds exactly.
        let log = StoreReader::open(&v2).unwrap().read().unwrap();
        let v1 = dir.join("ls-v1.stlog");
        std::fs::write(&v1, to_bytes_v1(&log).unwrap()).unwrap();
        // Any single trace file is a valid one-case input of its own.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&traces)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        let one_file = files.into_iter().next().expect("emitted traces");
        Fixture {
            dir,
            v2,
            v1,
            traces,
            one_file,
        }
    }

    /// Every input kind naming the same run, labelled for assertions.
    fn kinds(&self) -> Vec<(&'static str, String)> {
        vec![
            ("v2-store", self.v2.display().to_string()),
            ("v1-store", self.v1.display().to_string()),
            ("strace-dir", self.traces.display().to_string()),
            ("sim-spec", "sim:ls".to_string()),
        ]
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Runs one subcommand against `input`, asserting success and returning
/// stdout.
fn run(argv: &[&str], input: &str) -> Vec<u8> {
    let args: Vec<&str> = argv
        .iter()
        .map(|a| if *a == "<input>" { input } else { *a })
        .collect();
    let out = stinspect().args(&args).output().unwrap();
    assert!(
        out.status.success(),
        "{args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn every_subcommand_accepts_every_input_kind() {
    let fx = Fixture::build("all");
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    // `<input>` is substituted per kind; diff takes it on both sides.
    let commands: &[(&str, Vec<&str>)] = &[
        ("dfg", vec!["dfg", "<input>"]),
        ("stats", vec!["stats", "<input>"]),
        ("timeline", vec!["timeline", "<input>", "read:/usr/lib"]),
        (
            "diff",
            vec!["diff", "<input>", "<input>", "--cid-a", "a", "--cid-b", "b"],
        ),
        (
            "query",
            vec![
                "query",
                "<input>",
                "--filter",
                "class=read",
                "--emit",
                "events",
            ],
        ),
    ];
    for (name, argv) in commands {
        let golden = golden_path(name);
        if update {
            // Goldens are captured from the v2 store input (the kind the
            // pre-redesign binary supported on every subcommand).
            std::fs::write(&golden, run(argv, &fx.v2.display().to_string())).unwrap();
            continue;
        }
        let expected = std::fs::read(&golden)
            .unwrap_or_else(|_| panic!("missing {} — run UPDATE_GOLDEN=1", golden.display()));
        for (kind, input) in fx.kinds() {
            let got = run(argv, &input);
            assert!(
                got == expected,
                "{name} on {kind} diverges from the golden output\n--- got ---\n{}",
                String::from_utf8_lossy(&got)
            );
        }
    }
}

#[test]
fn single_strace_file_is_a_valid_input() {
    // A lone trace file (no directory) resolves to a one-case log on
    // every subcommand — the input kind the TraceSource layer added.
    let fx = Fixture::build("one");
    let one = fx.one_file.display().to_string();
    let stats = run(&["stats", "<input>"], &one);
    let text = String::from_utf8_lossy(&stats);
    assert!(text.contains("1 cases"), "{text}");
    let query = run(
        &[
            "query",
            "<input>",
            "--filter",
            "class=read",
            "--emit",
            "events",
        ],
        &one,
    );
    let text = String::from_utf8_lossy(&query);
    assert!(text.lines().count() > 1, "{text}");
    // Both diff sides may be the same single file: structurally identical.
    let diff = run(&["diff", "<input>", "<input>"], &one);
    assert!(
        String::from_utf8_lossy(&diff).contains("graphs are identical"),
        "{}",
        String::from_utf8_lossy(&diff)
    );
}

/// Deterministically corrupts one block of a v2 container: a single
/// bit flip inside the first block body (located via the documented
/// layout — header, then strings and directory framed as
/// `u64 len + body + crc32`, then the blocks length prefix).
fn corrupt_first_block(v2: &Path, out: &Path) {
    let mut image = std::fs::read(v2).unwrap();
    let mut off = 12usize;
    for _ in 0..2 {
        let len = u64::from_le_bytes(image[off..off + 8].try_into().unwrap()) as usize;
        off += 8 + len + 4;
    }
    off += 8; // blocks section length prefix
    image[off + 3] ^= 0x08;
    std::fs::write(out, image).unwrap();
}

#[test]
fn salvage_row_output_is_pinned_on_a_corrupted_store() {
    // The robustness row of the matrix: one deterministically corrupted
    // v2 store × {dfg, stats, query, fsck}. Salvage mode must produce
    // byte-identical stdout run over run (golden-pinned), fsck must use
    // its degraded exit code, and strict mode must reject the store.
    let fx = Fixture::build("salvage");
    let bad = fx.dir.join("ls-corrupt.stlog");
    corrupt_first_block(&fx.v2, &bad);
    let input = bad.display().to_string();
    let update = std::env::var("UPDATE_GOLDEN").is_ok();

    let commands: &[(&str, Vec<&str>, i32)] = &[
        ("salvage_dfg", vec!["--salvage", "dfg", "<input>"], 0),
        ("salvage_stats", vec!["--salvage", "stats", "<input>"], 0),
        (
            "salvage_query",
            vec![
                "--salvage",
                "query",
                "<input>",
                "--filter",
                "class=read",
                "--emit",
                "events",
            ],
            0,
        ),
        ("salvage_fsck", vec!["fsck", "<input>"], 3),
    ];
    for (name, argv, want_code) in commands {
        let args: Vec<&str> = argv
            .iter()
            .map(|a| if *a == "<input>" { input.as_str() } else { *a })
            .collect();
        let out = stinspect().args(&args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(*want_code),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // fsck echoes the store path; normalize it so the golden is
        // machine-independent.
        let got = String::from_utf8_lossy(&out.stdout).replace(&input, "<store>");
        let golden = golden_path(name);
        if update {
            std::fs::write(&golden, got.as_bytes()).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|_| panic!("missing {} — run UPDATE_GOLDEN=1", golden.display()));
        assert!(
            got == expected,
            "{name} diverges from the golden output\n--- got ---\n{got}"
        );
    }

    // Without --salvage the same store is a hard error on every
    // analysis subcommand.
    let out = stinspect().args(["stats", &input]).output().unwrap();
    assert!(
        !out.status.success(),
        "strict mode accepted a corrupt store"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Normalizes a `--metrics=json` line for golden comparison: the
/// store path, every `wall_ns`/`self_ns` timing, and the
/// machine-dependent route-plan notes are replaced with fixed tokens.
/// Everything else — the schema tag, the stage tree shape, call
/// counts, and the byte/block/event counters — is deterministic for a
/// fixed fixture and stays pinned.
fn normalize_metrics_json(line: &str, store: &str) -> String {
    let mut s = line.trim_end().replace(store, "<store>");
    for key in ["\"wall_ns\":", "\"self_ns\":"] {
        let mut out = String::new();
        let mut rest = s.as_str();
        while let Some(i) = rest.find(key) {
            let j = i + key.len();
            out.push_str(&rest[..j]);
            out.push('0');
            rest = rest[j..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        s = out;
    }
    for (key, token) in [
        ("\"route.reason\":\"", "<reason>"),
        ("\"route.workers\":\"", "<n>"),
    ] {
        if let Some(i) = s.find(key) {
            let j = i + key.len();
            let end = j + s[j..].find('"').expect("closing quote");
            s.replace_range(j..end, token);
        }
    }
    s
}

/// Scans a JSON document for structural validity without a parser:
/// brackets and braces must balance outside string literals, with
/// escapes honored. A Perfetto load would reject anything this scan
/// rejects.
fn json_brackets_balance(doc: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in doc.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

#[test]
fn metrics_json_is_pinned_and_chrome_trace_is_well_formed() {
    let fx = Fixture::build("metrics");
    let input = fx.v2.display().to_string();
    let update = std::env::var("UPDATE_GOLDEN").is_ok();

    // One matrix row with --metrics=json: the stage tree and counter
    // totals on stderr's last line are schema-stable and (after
    // normalizing paths, timings, and the worker plan) byte-pinned.
    let out = stinspect()
        .args([
            "query",
            &input,
            "--filter",
            "class=read",
            "--emit",
            "stats",
            "--metrics=json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let json_line = stderr
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"schema\":\"st-obs/1\""))
        .expect("a metrics JSON line on stderr");
    assert!(json_brackets_balance(json_line), "{json_line}");
    // The ad-hoc pushdown line and the report render the same counter.
    let pushdown_line = stderr
        .lines()
        .find(|l| l.starts_with("pushdown:"))
        .expect("pushdown summary line");
    let bytes_read = pushdown_line
        .rsplit("read ")
        .next()
        .and_then(|tail| tail.split(' ').next())
        .unwrap();
    assert!(
        json_line.contains(&format!("\"bytes_read\":{bytes_read}")),
        "JSON report and pushdown line disagree on bytes_read:\n{pushdown_line}\n{json_line}"
    );
    let got = normalize_metrics_json(json_line, &input);
    let golden = golden_path("metrics_query_json");
    if update {
        std::fs::write(&golden, format!("{got}\n")).unwrap();
    } else {
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|_| panic!("missing {} — run UPDATE_GOLDEN=1", golden.display()));
        assert!(
            format!("{got}\n") == expected,
            "metrics JSON diverges from the golden output\n--- got ---\n{got}"
        );
    }

    // --metrics=chrome writes a structurally valid trace-event
    // document with complete ("ph":"X") events carrying the span paths.
    let trace = fx.dir.join("trace.json");
    let out = stinspect()
        .args(["dfg", &input, "--metrics=chrome", "--metrics-out"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&trace).unwrap();
    assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
    assert!(json_brackets_balance(&doc), "unbalanced trace document");
    for needle in [
        "\"ph\":\"X\"",
        "\"displayTimeUnit\":\"ms\"",
        "\"otherData\"",
        "stinspect/session",
        "\"name\":\"store.decode_block\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in {doc}");
    }

    // chrome without a file sink is a usage error, not silent stderr spam.
    let out = stinspect()
        .args(["stats", &input, "--metrics=chrome"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn parse_ingests_every_input_kind() {
    // `parse` is the store-writer face of the same resolution layer:
    // any input kind can be ingested into a (v2) container.
    let fx = Fixture::build("parse");
    for (kind, input) in fx.kinds() {
        let out_store = fx.dir.join(format!("reingested-{kind}.stlog"));
        let out = stinspect()
            .arg("parse")
            .arg(&input)
            .arg("-o")
            .arg(&out_store)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "parse {kind}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("6 cases"), "parse {kind}: {stdout}");
        assert_eq!(
            &std::fs::read(&out_store).unwrap()[..8],
            b"STLOG2\0\0",
            "parse {kind} must write the current store format"
        );
    }
}
