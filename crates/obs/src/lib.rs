//! # st-obs — pipeline-wide structured tracing, metrics, and profiling
//!
//! The paper's premise is that observability (syscall traces → DFGs) is
//! how you diagnose an opaque system; this crate gives the reproduction
//! its *own* measurement plane so a real run can answer "where did this
//! query spend its time and bytes?" without ad-hoc `eprintln!`s.
//!
//! ## Model
//!
//! Three primitives, all no-ops unless [`set_enabled`]`(true)` was
//! called (the disabled path is one relaxed atomic load per site):
//!
//! - **Spans** — [`span()`] / [`span!`] return an RAII guard; nested
//!   guards form a tree keyed by `/`-joined name paths
//!   (`session/pushdown/store.decode_block`). Guards must be dropped
//!   in LIFO order, which scoping gives you for free.
//! - **Counters** — [`add`] bumps a named monotonic counter,
//!   attributed to the innermost open span on the calling thread.
//! - **Contexts** — [`context`] captures the current span path so
//!   worker threads can [`Context::attach`] it and have their spans
//!   nest under the spawning stage instead of floating at the root.
//!
//! Collection is thread-local (an unsynchronized stack + aggregate
//! map per thread) and merges into a process-global table when a
//! thread exits or a report is taken, so instrumented hot loops never
//! contend on a lock.
//!
//! ## Reports
//!
//! [`mark`] snapshots the current totals; [`report_since`] returns a
//! [`PipelineReport`] covering everything after a mark — a stage tree
//! with wall/self times and per-stage counters, renderable as a text
//! tree, stable JSON (`"st-obs/1"`), or a Chrome trace-event file
//! ([`chrome_since`]) loadable in `about:tracing` / Perfetto.
//!
//! ## Overhead contract
//!
//! Disabled: one `AtomicBool` relaxed load + branch per site; the
//! parse+dfg hot path must stay within 5% of an uninstrumented build
//! (guarded by the `obs_overhead` bench test and the `bench_snapshot`
//! "obs" section). Enabled: one heap path string per span plus an
//! entry in a bounded event buffer ([`MAX_EVENTS`]; overflow is
//! counted, never reallocated past the cap).

#![warn(missing_docs)]

pub mod report;

pub use report::{PipelineReport, StageNode, SCHEMA};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Cap on buffered raw span events (for Chrome trace output). Spans
/// beyond the cap still aggregate into the stage tree; only the
/// per-event timeline entry is dropped (and counted in
/// [`PipelineReport::dropped_events`]).
pub const MAX_EVENTS: usize = 1 << 18;

/// Path separator between nested span names. Span names themselves
/// use dots (`store.decode_block`), so `/` is reserved for nesting.
pub const PATH_SEP: char = '/';

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Returns whether collection is currently enabled. One relaxed
/// atomic load — this is the entire cost of every disabled call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide. Spans opened while
/// enabled still close correctly if collection is disabled mid-flight.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all collected state (aggregates, events, drop counts) for
/// the current process. Existing [`Mark`]s become meaningless.
/// Intended for benches and tests that reuse one process.
pub fn reset() {
    flush_current_thread();
    let mut g = global();
    g.agg.clear();
    g.events.clear();
    g.dropped = 0;
}

// ---------------------------------------------------------------------------
// collection internals

#[derive(Default, Clone)]
struct StageAgg {
    calls: u64,
    wall_ns: u64,
    counters: BTreeMap<&'static str, u64>,
}

#[derive(Clone)]
pub(crate) struct RawEvent {
    pub(crate) path: String,
    pub(crate) args: Option<String>,
    pub(crate) tid: u64,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
}

struct Frame {
    path: String,
    args: Option<String>,
    start: Instant,
}

#[derive(Default)]
struct Local {
    stack: Vec<Frame>,
    base: String,
    agg: BTreeMap<String, StageAgg>,
    events: Vec<RawEvent>,
    tid: u64,
}

struct LocalCell(RefCell<Local>);

impl Drop for LocalCell {
    fn drop(&mut self) {
        // Thread exit: fold this thread's aggregates into the global
        // table. Note `std::thread::scope` can return before a scoped
        // thread's TLS destructors run (rust-lang/rust#98498), so
        // scoped workers must not rely on this alone — dropping a
        // [`ContextGuard`] inside the closure flushes deterministically.
        let local = self.0.get_mut();
        merge_local(local);
    }
}

thread_local! {
    static LOCAL: LocalCell = LocalCell(RefCell::new(Local::default()));
}

#[derive(Default)]
struct Global {
    agg: BTreeMap<String, StageAgg>,
    events: Vec<RawEvent>,
    dropped: u64,
}

static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();

fn global() -> MutexGuard<'static, Global> {
    GLOBAL
        .get_or_init(|| Mutex::new(Global::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn merge_local(local: &mut Local) {
    if local.agg.is_empty() && local.events.is_empty() {
        return;
    }
    let mut g = global();
    for (path, agg) in std::mem::take(&mut local.agg) {
        let slot = g.agg.entry(path).or_default();
        slot.calls += agg.calls;
        slot.wall_ns += agg.wall_ns;
        for (k, v) in agg.counters {
            *slot.counters.entry(k).or_insert(0) += v;
        }
    }
    for ev in local.events.drain(..) {
        if g.events.len() < MAX_EVENTS {
            g.events.push(ev);
        } else {
            g.dropped += 1;
        }
    }
}

/// Folds the calling thread's pending aggregates into the global
/// table. Reports call this implicitly; long-lived threads that never
/// exit (e.g. a daemon accept loop) may call it at quiescent points.
pub fn flush_current_thread() {
    LOCAL.with(|cell| merge_local(&mut cell.0.borrow_mut()));
}

// ---------------------------------------------------------------------------
// spans

/// RAII guard returned by [`span()`] / [`span!`]. Records a stage's
/// wall time from construction to drop. Not `Send`: a guard must be
/// dropped on the thread that opened it, in LIFO order.
#[must_use = "a span measures the scope it is alive for; binding it to `_` drops it immediately"]
pub struct Span {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` nested under the thread's innermost open
/// span (or its attached [`Context`], or the root). Returns a no-op
/// guard when collection is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            active: false,
            _not_send: PhantomData,
        };
    }
    open_span(name, None)
}

/// Like [`span()`], with a lazily-built annotation string recorded on
/// the span's timeline event (visible in Chrome trace output). The
/// closure runs only when collection is enabled.
#[inline]
pub fn span_with<F: FnOnce() -> String>(name: &'static str, args: F) -> Span {
    if !enabled() {
        return Span {
            active: false,
            _not_send: PhantomData,
        };
    }
    open_span(name, Some(args()))
}

fn open_span(name: &'static str, args: Option<String>) -> Span {
    let _ = EPOCH.get_or_init(Instant::now);
    LOCAL.with(|cell| {
        let mut local = cell.0.borrow_mut();
        let parent: &str = match local.stack.last() {
            Some(f) => &f.path,
            None => &local.base,
        };
        let path = if parent.is_empty() {
            name.to_string()
        } else {
            let mut p = String::with_capacity(parent.len() + 1 + name.len());
            p.push_str(parent);
            p.push(PATH_SEP);
            p.push_str(name);
            p
        };
        local.stack.push(Frame {
            path,
            args,
            start: Instant::now(),
        });
    });
    Span {
        active: true,
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        LOCAL.with(|cell| {
            let mut local = cell.0.borrow_mut();
            let Some(frame) = local.stack.pop() else {
                return;
            };
            let dur_ns = frame.start.elapsed().as_nanos() as u64;
            let agg = local.agg.entry(frame.path.clone()).or_default();
            agg.calls += 1;
            agg.wall_ns += dur_ns;
            if local.events.len() < MAX_EVENTS {
                if local.tid == 0 {
                    local.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                }
                let epoch = *EPOCH.get_or_init(Instant::now);
                let start_ns = frame.start.saturating_duration_since(epoch).as_nanos() as u64;
                let tid = local.tid;
                local.events.push(RawEvent {
                    path: frame.path,
                    args: frame.args,
                    tid,
                    start_ns,
                    dur_ns,
                });
            }
        });
    }
}

/// Opens a span; extra arguments become a `key=value` annotation on
/// the span's timeline event, formatted only when collection is
/// enabled. Values must implement `Display`.
///
/// ```
/// let _guard = st_obs::span!("store.decode_block");
/// let (cid, block) = ("a", 3);
/// let _guard = st_obs::span!("store.decode_block", cid, block);
/// let _guard = st_obs::span!("query.scan", cases = 12);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span_with($name, || {
            let mut s = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    let _ = write!(s, concat!(stringify!($key), "={} "), $val);
                }
            )+
            s.truncate(s.trim_end().len());
            s
        })
    };
    ($name:expr, $($val:expr),+ $(,)?) => {
        $crate::span_with($name, || {
            let mut s = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    let _ = write!(s, concat!(stringify!($val), "={} "), $val);
                }
            )+
            s.truncate(s.trim_end().len());
            s
        })
    };
}

// ---------------------------------------------------------------------------
// counters

/// Adds `n` to the named monotonic counter, attributed to the
/// innermost open span on this thread (or the attached context path,
/// or the root bucket). No-op when collection is disabled.
#[inline]
pub fn add(counter: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    LOCAL.with(|cell| {
        let mut local = cell.0.borrow_mut();
        let path = match local.stack.last() {
            Some(f) => f.path.clone(),
            None => local.base.clone(),
        };
        let agg = local.agg.entry(path).or_default();
        *agg.counters.entry(counter).or_insert(0) += n;
    });
}

// ---------------------------------------------------------------------------
// context propagation

/// A captured span path, used to parent worker-thread spans under the
/// stage that spawned them. Obtained from [`context`]; cheap to clone
/// and `Send`.
#[derive(Clone, Debug, Default)]
pub struct Context(Option<String>);

/// Captures the calling thread's innermost open span path (or its
/// attached base). Returns an empty context when disabled.
pub fn context() -> Context {
    if !enabled() {
        return Context(None);
    }
    LOCAL.with(|cell| {
        let local = cell.0.borrow();
        let path = match local.stack.last() {
            Some(f) => f.path.clone(),
            None => local.base.clone(),
        };
        if path.is_empty() {
            Context(None)
        } else {
            Context(Some(path))
        }
    })
}

impl Context {
    /// Installs this context as the calling thread's root path; spans
    /// opened while the guard lives nest under it. Returns a no-op
    /// guard when collection is disabled.
    ///
    /// Dropping the guard also folds the thread's pending aggregates
    /// into the global table. Worker closures drop it before they
    /// return, which orders their collected data before the spawning
    /// `thread::scope` completes — `scope` does **not** wait for TLS
    /// destructors (rust-lang/rust#98498), so a report taken right
    /// after the scope would otherwise race with the workers' merges.
    pub fn attach(&self) -> ContextGuard {
        if !enabled() {
            return ContextGuard {
                prev: None,
                active: false,
            };
        }
        let prev = self.0.as_ref().map(|path| {
            LOCAL.with(|cell| {
                let mut local = cell.0.borrow_mut();
                std::mem::replace(&mut local.base, path.clone())
            })
        });
        ContextGuard { prev, active: true }
    }
}

/// RAII guard from [`Context::attach`]; restores the thread's
/// previous base path and flushes the thread's aggregates on drop.
pub struct ContextGuard {
    prev: Option<String>,
    active: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        LOCAL.with(|cell| {
            let mut local = cell.0.borrow_mut();
            if let Some(prev) = self.prev.take() {
                local.base = prev;
            }
            merge_local(&mut local);
        });
    }
}

// ---------------------------------------------------------------------------
// marks and reports

/// A snapshot of collected totals, used to scope a report to "what
/// happened after this point" ([`report_since`]). Invalidated by
/// [`reset`].
pub struct Mark {
    agg: BTreeMap<String, StageAgg>,
    events_len: usize,
    dropped: u64,
}

/// Snapshots current totals (flushing the calling thread first).
pub fn mark() -> Mark {
    flush_current_thread();
    let g = global();
    Mark {
        agg: g.agg.clone(),
        events_len: g.events.len(),
        dropped: g.dropped,
    }
}

/// Builds a [`PipelineReport`] covering everything collected since
/// `since`. Spans still open at call time are not included (they have
/// no wall time yet); close the guard first.
pub fn report_since(since: &Mark) -> PipelineReport {
    flush_current_thread();
    let g = global();
    let mut delta: Vec<(String, u64, u64, BTreeMap<String, u64>)> = Vec::new();
    for (path, agg) in &g.agg {
        let base = since.agg.get(path);
        let calls = agg.calls - base.map_or(0, |b| b.calls);
        let wall = agg.wall_ns - base.map_or(0, |b| b.wall_ns);
        let mut counters = BTreeMap::new();
        for (k, v) in &agg.counters {
            let prev = base.and_then(|b| b.counters.get(k)).copied().unwrap_or(0);
            if *v > prev {
                counters.insert((*k).to_string(), *v - prev);
            }
        }
        if calls > 0 || !counters.is_empty() {
            delta.push((path.clone(), calls, wall, counters));
        }
    }
    let dropped = g.dropped - since.dropped;
    drop(g);
    report::build(delta, dropped, enabled())
}

/// Builds a [`PipelineReport`] covering everything collected since
/// process start (or the last [`reset`]).
pub fn report() -> PipelineReport {
    report_since(&Mark {
        agg: BTreeMap::new(),
        events_len: 0,
        dropped: 0,
    })
}

/// Renders the raw span timeline collected since `since` as a Chrome
/// trace-event JSON document (`{"traceEvents":[...]}`), loadable in
/// `about:tracing` or [Perfetto](https://ui.perfetto.dev).
pub fn chrome_since(since: &Mark) -> String {
    flush_current_thread();
    let g = global();
    let events = &g.events[since.events_len.min(g.events.len())..];
    report::render_chrome(events, g.dropped - since.dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Obs state is process-global; serialize tests touching it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        g
    }

    #[test]
    fn disabled_sites_are_inert() {
        let _g = locked();
        set_enabled(false);
        reset();
        {
            let _s = span!("never");
            add("ghost", 7);
        }
        let r = report();
        assert!(r.stages.is_empty());
        assert_eq!(r.counter("ghost"), 0);
        assert!(!r.enabled);
    }

    #[test]
    fn spans_nest_and_counters_attribute() {
        let _g = locked();
        {
            let _a = span!("outer");
            add("bytes", 10);
            {
                let _b = span!("inner", detail = 42);
                add("bytes", 5);
            }
            {
                let _b = span!("inner");
            }
        }
        let r = report();
        assert_eq!(r.stages.len(), 1);
        let outer = &r.stages[0];
        assert_eq!(outer.path, "outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.counters.get("bytes"), Some(&10));
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.path, "outer/inner");
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.counters.get("bytes"), Some(&5));
        assert_eq!(r.counter("bytes"), 15);
        assert!(outer.wall_ns >= inner.wall_ns);
        assert!(outer.self_ns <= outer.wall_ns);
    }

    #[test]
    fn context_parents_worker_spans() {
        let _g = locked();
        {
            let _a = span!("stage");
            let cx = context();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _attach = cx.attach();
                    let _w = span!("worker");
                    add("done", 1);
                });
            });
        }
        let r = report();
        let stage = &r.stages[0];
        assert_eq!(stage.path, "stage");
        assert_eq!(stage.children.len(), 1);
        assert_eq!(stage.children[0].path, "stage/worker");
        assert_eq!(stage.children[0].counters.get("done"), Some(&1));
    }

    #[test]
    fn mark_scopes_reports_to_a_delta() {
        let _g = locked();
        {
            let _s = span!("before");
            add("n", 1);
        }
        let m = mark();
        {
            let _s = span!("after");
            add("n", 2);
        }
        let r = report_since(&m);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].path, "after");
        assert_eq!(r.counter("n"), 2);
        let full = report();
        assert_eq!(full.counter("n"), 3);
    }

    #[test]
    fn chrome_trace_has_complete_events() {
        let _g = locked();
        let m = mark();
        {
            let _s = span!("traced", kind = "x");
        }
        let doc = chrome_since(&m);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"traced\""));
        assert!(doc.contains("kind=x"));
    }

    #[test]
    fn json_report_is_stable_shape() {
        let _g = locked();
        {
            let _s = span!("stage");
            add("bytes_read", 3);
        }
        let mut r = report();
        r.set_note("route", "seq");
        let json = r.render_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(json.contains("\"bytes_read\":3"));
        assert!(json.contains("\"route\":\"seq\""));
    }
}
