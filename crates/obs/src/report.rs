//! Report construction and rendering: the stage tree
//! ([`PipelineReport`]) with its text, JSON, and Chrome trace-event
//! renderings.

use std::collections::BTreeMap;

use crate::{RawEvent, PATH_SEP};

/// Schema tag embedded in every JSON rendering; bump only on
/// incompatible shape changes.
pub const SCHEMA: &str = "st-obs/1";

/// One stage in the report tree: a span path with its call count,
/// accumulated wall time, self time (wall minus direct children), and
/// the counters attributed to it.
#[derive(Clone, Debug, Default)]
pub struct StageNode {
    /// Last path segment (the span name as written at the call site).
    pub name: String,
    /// Full `/`-joined path from the root.
    pub path: String,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub wall_ns: u64,
    /// Wall time not covered by direct children (saturating: parallel
    /// children can overlap the parent, in which case this is 0).
    pub self_ns: u64,
    /// Counters attributed to this stage.
    pub counters: BTreeMap<String, u64>,
    /// Nested stages, ordered by path.
    pub children: Vec<StageNode>,
}

/// A structured account of what a pipeline run did: a tree of timed
/// stages, counter totals, free-form notes (route decisions), and the
/// number of timeline events dropped at the buffer cap.
///
/// Produced by [`crate::report_since`] / [`crate::report()`]; the
/// session layer augments it with route notes and warning counts so
/// it subsumes the ad-hoc pushdown/warning stderr lines.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Root stages of the span tree (empty when collection was
    /// disabled for the covered interval).
    pub stages: Vec<StageNode>,
    /// Counter totals summed across all stages (plus any counters
    /// recorded outside a span).
    pub totals: BTreeMap<String, u64>,
    /// Free-form annotations: route decisions, source descriptions.
    pub notes: BTreeMap<String, String>,
    /// Timeline events dropped because the buffer hit
    /// [`crate::MAX_EVENTS`].
    pub dropped_events: u64,
    /// Whether collection was enabled when the report was taken.
    pub enabled: bool,
}

impl PipelineReport {
    /// Returns the total for a counter, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }

    /// Folds an externally-accounted value into the totals, keeping
    /// the larger of the two. When collection is enabled the
    /// instrumented total and the external accounting agree (property
    /// tested), so this is an idempotent no-op; when disabled it
    /// fills in the value so the report stays meaningful.
    pub fn merge_counter(&mut self, name: &str, value: u64) {
        let slot = self.totals.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Sets a note (route decision, source description).
    pub fn set_note(&mut self, key: &str, value: impl Into<String>) {
        self.notes.insert(key.to_string(), value.into());
    }

    /// Returns a note's value, if set.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes.get(key).map(String::as_str)
    }

    /// Renders the report as an indented text tree (for `--metrics` /
    /// `--metrics=text` on stderr).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("── pipeline report ──\n");
        if self.stages.is_empty() {
            out.push_str("(no stages recorded — metrics were disabled during the run)\n");
        } else {
            let mut width = 0usize;
            for s in &self.stages {
                measure(s, 0, &mut width);
            }
            for s in &self.stages {
                render_node(s, 0, width, &mut out);
            }
        }
        if !self.totals.is_empty() {
            out.push_str("totals:");
            for (k, v) in &self.totals {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        for (k, v) in &self.notes {
            out.push_str(&format!("note: {k}={v}\n"));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "dropped timeline events: {}\n",
                self.dropped_events
            ));
        }
        out
    }

    /// Renders the report as a single line of JSON with the stable
    /// [`SCHEMA`] shape:
    ///
    /// ```json
    /// {"schema":"st-obs/1","enabled":true,"dropped_events":0,
    ///  "totals":{...},"notes":{...},"stages":[{"name":...,"path":...,
    ///  "calls":n,"wall_ns":n,"self_ns":n,"counters":{...},"children":[...]}]}
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"enabled\":{},\"dropped_events\":{}",
            SCHEMA, self.enabled, self.dropped_events
        ));
        out.push_str(",\"totals\":");
        render_counters_json(&self.totals, &mut out);
        out.push_str(",\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        out.push_str("},\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_node_json(s, &mut out);
        }
        out.push_str("]}");
        out
    }
}

fn measure(node: &StageNode, depth: usize, width: &mut usize) {
    *width = (*width).max(depth * 2 + node.name.len());
    for c in &node.children {
        measure(c, depth + 1, width);
    }
}

fn render_node(node: &StageNode, depth: usize, width: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let mut line = format!(
        "{indent}{:<pad$} {:>5}x {:>10}",
        node.name,
        node.calls,
        fmt_ns(node.wall_ns),
        pad = width - depth * 2
    );
    if !node.children.is_empty() && node.self_ns != node.wall_ns {
        line.push_str(&format!(" [self {}]", fmt_ns(node.self_ns)));
    }
    if !node.counters.is_empty() {
        line.push_str(" |");
        for (k, v) in &node.counters {
            line.push_str(&format!(" {k}={v}"));
        }
    }
    out.push_str(&line);
    out.push('\n');
    for c in &node.children {
        render_node(c, depth + 1, width, out);
    }
}

fn render_counters_json(counters: &BTreeMap<String, u64>, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape_json(k), v));
    }
    out.push('}');
}

fn render_node_json(node: &StageNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"path\":\"{}\",\"calls\":{},\"wall_ns\":{},\"self_ns\":{}",
        escape_json(&node.name),
        escape_json(&node.path),
        node.calls,
        node.wall_ns,
        node.self_ns
    ));
    out.push_str(",\"counters\":");
    render_counters_json(&node.counters, out);
    out.push_str(",\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_node_json(c, out);
    }
    out.push_str("]}");
}

/// Formats nanoseconds for humans: `123ns`, `12.3µs`, `4.56ms`, `1.23s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Assembles the stage tree from flat `(path, calls, wall, counters)`
/// deltas. Counters recorded outside any span (empty path) fold into
/// the totals without creating a node; ancestors that never closed in
/// the covered interval appear as implicit zero-call nodes.
pub(crate) fn build(
    delta: Vec<(String, u64, u64, BTreeMap<String, u64>)>,
    dropped: u64,
    enabled: bool,
) -> PipelineReport {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut flat: BTreeMap<String, (u64, u64, BTreeMap<String, u64>)> = BTreeMap::new();
    for (path, calls, wall, counters) in delta {
        for (k, v) in &counters {
            *totals.entry(k.clone()).or_insert(0) += v;
        }
        if path.is_empty() {
            continue;
        }
        // Materialize implicit ancestors so the tree is connected even
        // when a parent span is still open (e.g. the CLI root span
        // while a session report is taken).
        let mut end = 0;
        while let Some(i) = path[end..].find(PATH_SEP) {
            end += i;
            flat.entry(path[..end].to_string()).or_default();
            end += 1;
        }
        let slot = flat.entry(path).or_default();
        slot.0 += calls;
        slot.1 += wall;
        for (k, v) in counters {
            *slot.2.entry(k).or_insert(0) += v;
        }
    }

    let mut children: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut roots: Vec<String> = Vec::new();
    for path in flat.keys() {
        match path.rfind(PATH_SEP) {
            Some(i) => children
                .entry(path[..i].to_string())
                .or_default()
                .push(path.clone()),
            None => roots.push(path.clone()),
        }
    }

    fn build_node(
        path: &str,
        flat: &BTreeMap<String, (u64, u64, BTreeMap<String, u64>)>,
        children: &BTreeMap<String, Vec<String>>,
    ) -> StageNode {
        let (calls, wall_ns, counters) = flat.get(path).cloned().unwrap_or_default();
        let kids: Vec<StageNode> = children
            .get(path)
            .map(|c| c.iter().map(|p| build_node(p, flat, children)).collect())
            .unwrap_or_default();
        let child_wall: u64 = kids.iter().map(|k| k.wall_ns).sum();
        let name = path
            .rfind(PATH_SEP)
            .map(|i| &path[i + 1..])
            .unwrap_or(path)
            .to_string();
        StageNode {
            name,
            path: path.to_string(),
            calls,
            wall_ns,
            self_ns: wall_ns.saturating_sub(child_wall),
            counters,
            children: kids,
        }
    }

    let stages = roots
        .iter()
        .map(|p| build_node(p, &flat, &children))
        .collect();
    PipelineReport {
        stages,
        totals,
        notes: BTreeMap::new(),
        dropped_events: dropped,
        enabled,
    }
}

/// Renders raw span events as a Chrome trace-event document.
pub(crate) fn render_chrome(events: &[RawEvent], dropped: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = ev
            .path
            .rfind(PATH_SEP)
            .map(|i| &ev.path[i + 1..])
            .unwrap_or(&ev.path);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"st\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"path\":\"{}\"",
            escape_json(name),
            ev.tid,
            ev.start_ns / 1_000,
            ev.start_ns % 1_000,
            ev.dur_ns / 1_000,
            ev.dur_ns % 1_000,
            escape_json(&ev.path),
        ));
        if let Some(args) = &ev.args {
            out.push_str(&format!(",\"detail\":\"{}\"", escape_json(args)));
        }
        out.push_str("}}");
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"{SCHEMA}\",\"dropped_events\":{dropped}}}}}"
    ));
    out
}
