//! Per-case activity timelines (Fig. 5).
//!
//! `t_f(a, C)` (Eq. 15) collects the `(start, end)` tuples of every
//! event of activity `a`; Fig. 5 plots them as horizontal bars, one row
//! per case. [`Timeline`] materializes those rows and renders them as
//! ASCII (for terminals) or SVG (for reports).

use st_model::Micros;

use crate::mapped::MappedLog;

/// One case's intervals for the selected activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRow {
    /// Case label (`<cid><rid>`, e.g. `b9157`).
    pub label: String,
    /// Event intervals, in start order.
    pub intervals: Vec<(Micros, Micros)>,
}

/// The timeline of one activity across all cases (Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Name of the activity plotted.
    pub activity: String,
    /// One row per case that executed the activity.
    pub rows: Vec<TimelineRow>,
    /// Earliest start across rows.
    pub t_min: Micros,
    /// Latest end across rows.
    pub t_max: Micros,
}

impl Timeline {
    /// Collects the timeline of the activity named `name`. Returns
    /// `None` when no event maps to it.
    pub fn for_activity(mapped: &MappedLog<'_>, name: &str) -> Option<Timeline> {
        let target = mapped.table().get(name)?;
        let interner = mapped.log().interner();
        let mut rows = Vec::new();
        let mut t_min = Micros(u64::MAX);
        let mut t_max = Micros(0);
        for (case_idx, case) in mapped.log().cases().iter().enumerate() {
            let mut intervals = Vec::new();
            for (event, assigned) in case.events.iter().zip(&mapped.assignments()[case_idx]) {
                if *assigned == Some(target) {
                    let (s, e) = event.interval();
                    t_min = t_min.min(s);
                    t_max = t_max.max(e);
                    intervals.push((s, e));
                }
            }
            if !intervals.is_empty() {
                rows.push(TimelineRow {
                    label: case.meta.label(interner),
                    intervals,
                });
            }
        }
        if rows.is_empty() {
            return None;
        }
        Some(Timeline {
            activity: name.to_string(),
            rows,
            t_min,
            t_max,
        })
    }

    /// Total plotted span.
    pub fn span(&self) -> Micros {
        self.t_max.saturating_sub(self.t_min)
    }

    /// Renders the timeline as ASCII art, `width` columns for the time
    /// axis (Fig. 5 shape: one bar lane per case).
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self.span().as_micros().max(1);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "timeline of {:?} ({} cases)\n",
            self.activity,
            self.rows.len()
        );
        for row in &self.rows {
            let mut lane = vec![b'.'; width];
            for &(s, e) in &row.intervals {
                let from = ((s.saturating_sub(self.t_min)).as_micros() as u128 * width as u128
                    / span as u128) as usize;
                let to = ((e.saturating_sub(self.t_min)).as_micros() as u128 * width as u128
                    / span as u128) as usize;
                let to = to.clamp(from + 1, width).max(from + 1).min(width);
                for cell in lane
                    .iter_mut()
                    .take(to.min(width))
                    .skip(from.min(width - 1))
                {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "{:<label_w$} |{}|\n",
                row.label,
                String::from_utf8(lane).expect("ascii lane")
            ));
        }
        let ms = span as f64 / 1_000.0;
        out.push_str(&format!(
            "{:<label_w$} 0{:>w$}\n",
            "",
            format!("{ms:.1} ms"),
            w = width
        ));
        out
    }

    /// Renders the timeline as a minimal standalone SVG.
    pub fn render_svg(&self) -> String {
        let width = 640.0;
        let row_h = 22.0;
        let label_w = 90.0;
        let height = row_h * self.rows.len() as f64 + 30.0;
        let span = self.span().as_micros().max(1) as f64;
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n",
            w = width + label_w,
            h = height
        );
        for (i, row) in self.rows.iter().enumerate() {
            let y = 10.0 + i as f64 * row_h;
            out.push_str(&format!(
                "  <text x=\"0\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\">{}</text>\n",
                y + 10.0,
                row.label
            ));
            for &(s, e) in &row.intervals {
                let x = label_w + (s.saturating_sub(self.t_min)).as_micros() as f64 / span * width;
                let w = ((e.saturating_sub(s)).as_micros() as f64 / span * width).max(1.0);
                out.push_str(&format!(
                    "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"14\" fill=\"#1f77b4\"/>\n"
                ));
            }
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Pid, Syscall};
    use std::sync::Arc;

    fn log_three_cases() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for (rid, offsets) in [
            (9157u32, vec![0u64, 300]),
            (9158, vec![100]),
            (9160, vec![150, 600]),
        ] {
            let meta = CaseMeta {
                cid: i.intern("b"),
                host: i.intern("h"),
                rid,
            };
            let events = offsets
                .iter()
                .map(|&t| {
                    Event::new(
                        Pid(rid),
                        Syscall::Read,
                        Micros(t),
                        Micros(100),
                        i.intern("/usr/lib/x.so"),
                    )
                    .with_size(832)
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    #[test]
    fn collects_rows_per_case() {
        let log = log_three_cases();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let tl = Timeline::for_activity(&mapped, "read:/usr/lib").unwrap();
        assert_eq!(tl.rows.len(), 3);
        assert_eq!(tl.rows[0].label, "b9157");
        assert_eq!(tl.rows[0].intervals.len(), 2);
        assert_eq!(tl.t_min, Micros(0));
        assert_eq!(tl.t_max, Micros(700));
        assert_eq!(tl.span(), Micros(700));
    }

    #[test]
    fn missing_activity_returns_none() {
        let log = log_three_cases();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        assert!(Timeline::for_activity(&mapped, "write:/nope").is_none());
    }

    #[test]
    fn ascii_render_has_one_lane_per_case() {
        let log = log_three_cases();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let tl = Timeline::for_activity(&mapped, "read:/usr/lib").unwrap();
        let art = tl.render_ascii(60);
        let lanes: Vec<&str> = art.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(lanes.len(), 3, "{art}");
        assert!(art.contains('#'), "{art}");
        assert!(art.contains("ms"), "{art}");
    }

    #[test]
    fn svg_render_contains_rects() {
        let log = log_three_cases();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let tl = Timeline::for_activity(&mapped, "read:/usr/lib").unwrap();
        let svg = tl.render_svg();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("b9158"));
    }

    #[test]
    fn zero_span_timeline_renders() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![Event::new(
                Pid(1),
                Syscall::Read,
                Micros(5),
                Micros(0),
                i.intern("/x/y"),
            )],
        ));
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let tl = Timeline::for_activity(&mapped, "read:/x/y").unwrap();
        assert_eq!(tl.span(), Micros(0));
        let art = tl.render_ascii(40);
        assert!(!art.is_empty());
    }
}
