//! Per-activity I/O statistics (Sec. IV-B, Eqs. 6–17).
//!
//! For every activity `a ∈ A_f` encountered in the event log:
//!
//! * **relative duration** `rd_f(a, C)` (Eqs. 6–8): time spent in events
//!   of `a` divided by time spent across all activities;
//! * **total bytes moved** `b_f(a, C)` (Eq. 9): sum of transfer sizes;
//! * **process data rate** `d̄r_f(a, C)` (Eqs. 11–13): arithmetic mean of
//!   per-event `size/dur` rates;
//! * **max-concurrency** `mc_f(a, C)` (Eqs. 14–16): computed with the
//!   paper's windowed algorithm (see [`crate::concurrency`]); the exact
//!   sweep-line value is kept alongside for comparison;
//! * **case concurrency**: the maximum number of *distinct cases* with
//!   simultaneously active events — the `Ranks:` annotation that appears
//!   on some nodes of Fig. 3c.
//!
//! Nodes render these as `Load: rd (bytes)` and `DR: mc × rate`
//! (Eqs. 10 and 17).

use std::collections::HashMap;

use st_model::Micros;

use crate::activity::{ActivityId, ActivityTable};
use crate::concurrency::{max_concurrency_exact, max_concurrency_windowed};
use crate::mapped::MappedLog;

/// Statistics for one activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityStats {
    /// Number of events mapped to this activity.
    pub events: u64,
    /// Summed duration `d̄_f(a, C)` (Eq. 7).
    pub total_dur: Micros,
    /// Relative duration `rd_f(a, C)` ∈ [0, 1] (Eq. 8).
    pub rel_dur: f64,
    /// Total bytes moved `b_f(a, C)` (Eq. 9).
    pub bytes: u64,
    /// Process data rate `d̄r_f(a, C)` in bytes/s (Eq. 13); 0 when no
    /// event had a defined rate.
    pub mean_rate_bps: f64,
    /// Events contributing to the rate mean.
    pub rated_events: u64,
    /// Max-concurrency `mc_f(a, C)` — the paper's windowed algorithm
    /// (Eq. 16).
    pub max_concurrency: u32,
    /// Exact pointwise maximum concurrency (sweep-line), for comparison.
    pub max_concurrency_exact: u32,
    /// Maximum number of distinct cases simultaneously inside events of
    /// this activity (`Ranks:`, Fig. 3c).
    pub case_concurrency: u32,
}

/// Statistics for every activity of a mapped log.
#[derive(Debug, Clone)]
pub struct IoStatistics {
    table: ActivityTable,
    per: Vec<ActivityStats>,
    total_dur: Micros,
}

impl IoStatistics {
    /// Computes all statistics in one pass over the mapped events plus a
    /// per-activity interval sort (the paper's O(mn) step).
    pub fn compute(mapped: &MappedLog<'_>) -> IoStatistics {
        let _span = st_obs::span!("stats.compute");
        Self::accumulate(mapped, mapped.iter_mapped())
    }

    /// Computes the statistics of a *slice*: only the events a
    /// [`st_model::LogView`] keeps contribute — the projection hook that
    /// lets per-file / per-rank / per-window slices reuse one mapping
    /// pass. The activity table is the full log's, so activities the
    /// slice drops report zero counts, and Eq. 8's relative durations
    /// are normalized over the slice's own total.
    ///
    /// `view` must slice the same [`st_model::EventLog`] the mapped log
    /// was built from; panics otherwise (via
    /// [`MappedLog::iter_mapped_view`]).
    pub fn compute_view(mapped: &MappedLog<'_>, view: &st_model::LogView<'_>) -> IoStatistics {
        let _span = st_obs::span!("stats.compute.view");
        Self::accumulate(mapped, mapped.iter_mapped_view(view))
    }

    fn accumulate<'a>(
        mapped: &MappedLog<'_>,
        events: impl Iterator<Item = (usize, crate::ActivityId, &'a st_model::Event)>,
    ) -> IoStatistics {
        let m = mapped.activity_count();
        struct Accum {
            events: u64,
            dur: Micros,
            bytes: u64,
            rate_sum: f64,
            rated: u64,
            intervals: Vec<(Micros, Micros)>,
            case_intervals: Vec<(usize, Micros, Micros)>,
        }
        let mut acc: Vec<Accum> = (0..m)
            .map(|_| Accum {
                events: 0,
                dur: Micros::ZERO,
                bytes: 0,
                rate_sum: 0.0,
                rated: 0,
                intervals: Vec::new(),
                case_intervals: Vec::new(),
            })
            .collect();

        for (case_idx, activity, event) in events {
            let a = &mut acc[activity.index()];
            a.events += 1;
            a.dur += event.dur;
            if let Some(size) = event.size {
                a.bytes += size;
            }
            if let Some(rate) = event.data_rate_bps() {
                a.rate_sum += rate;
                a.rated += 1;
            }
            let interval = event.interval();
            a.intervals.push(interval);
            a.case_intervals.push((case_idx, interval.0, interval.1));
        }

        let total_dur: Micros = acc.iter().map(|a| a.dur).sum();
        let per = acc
            .into_iter()
            .map(|a| ActivityStats {
                events: a.events,
                total_dur: a.dur,
                rel_dur: if total_dur.as_micros() == 0 {
                    0.0
                } else {
                    a.dur.as_micros() as f64 / total_dur.as_micros() as f64
                },
                bytes: a.bytes,
                mean_rate_bps: if a.rated == 0 {
                    0.0
                } else {
                    a.rate_sum / a.rated as f64
                },
                rated_events: a.rated,
                max_concurrency: max_concurrency_windowed(&a.intervals),
                max_concurrency_exact: max_concurrency_exact(&a.intervals),
                case_concurrency: case_concurrency(&a.case_intervals),
            })
            .collect();

        IoStatistics {
            table: mapped.table().clone(),
            per,
            total_dur,
        }
    }

    /// Statistics of an activity by id.
    pub fn get(&self, id: ActivityId) -> Option<&ActivityStats> {
        self.per.get(id.index())
    }

    /// Statistics of an activity by name (works across DFGs built from
    /// other logs, e.g. when coloring a sub-log's DFG with full-log
    /// statistics as the paper does in Fig. 3b/3c).
    pub fn get_by_name(&self, name: &str) -> Option<&ActivityStats> {
        self.table.get(name).and_then(|id| self.get(id))
    }

    /// Iterates `(id, name, stats)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ActivityId, &str, &ActivityStats)> {
        self.table
            .iter()
            .filter_map(move |(id, name)| self.get(id).map(|s| (id, name, s)))
    }

    /// Total duration across all activities (the Eq. 8 denominator).
    pub fn total_dur(&self) -> Micros {
        self.total_dur
    }

    /// Largest relative duration across activities (normalizer for
    /// statistics-based coloring).
    pub fn max_rel_dur(&self) -> f64 {
        self.per.iter().map(|s| s.rel_dur).fold(0.0, f64::max)
    }

    /// Largest byte count across activities.
    pub fn max_bytes(&self) -> u64 {
        self.per.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// Exports the statistics table as CSV (one row per activity), for
    /// downstream analysis outside the renderer.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "activity,events,total_dur_us,rel_dur,bytes,mean_rate_bps,mc_windowed,mc_exact,rank_concurrency\n",
        );
        for (_, name, s) in self.iter() {
            let escaped = if name.contains(',') || name.contains('"') {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.to_string()
            };
            out.push_str(&format!(
                "{escaped},{},{},{:.6},{},{:.3},{},{},{}\n",
                s.events,
                s.total_dur.as_micros(),
                s.rel_dur,
                s.bytes,
                s.mean_rate_bps,
                s.max_concurrency,
                s.max_concurrency_exact,
                s.case_concurrency
            ));
        }
        out
    }

    /// Number of activities covered.
    pub fn len(&self) -> usize {
        self.per.len()
    }

    /// Whether no activity was observed.
    pub fn is_empty(&self) -> bool {
        self.per.is_empty()
    }
}

/// Maximum number of distinct cases simultaneously active: sweep over
/// boundaries keeping a per-case open-interval count.
fn case_concurrency(intervals: &[(usize, Micros, Micros)]) -> u32 {
    if intervals.is_empty() {
        return 0;
    }
    let mut boundaries: Vec<(Micros, i32, usize)> = Vec::with_capacity(intervals.len() * 2);
    for &(case, start, end) in intervals {
        boundaries.push((start, 1, case));
        boundaries.push((end.max(start), -1, case));
    }
    boundaries.sort_by_key(|&(t, delta, _)| (t, delta));
    let mut per_case: HashMap<usize, i32> = HashMap::new();
    let mut active_cases = 0u32;
    let mut best = 0u32;
    for (_, delta, case) in boundaries {
        let counter = per_case.entry(case).or_insert(0);
        let was_active = *counter > 0;
        *counter += delta;
        let is_active = *counter > 0;
        match (was_active, is_active) {
            (false, true) => {
                active_cases += 1;
                best = best.max(active_cases);
            }
            (true, false) => active_cases -= 1,
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::CallTopDirs;
    use crate::MappedLog;
    use st_model::{Case, CaseMeta, Event, EventLog, Pid, Syscall};
    use std::sync::Arc;

    /// Two cases; activity A gets 832 B in 203 us twice (overlapping
    /// across cases), activity B gets 100 B in 100 us once.
    fn sample() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let pa = i.intern("/usr/lib/libc.so");
        let pb = i.intern("/etc/passwd");
        let meta0 = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta0,
            vec![
                Event::new(Pid(1), Syscall::Read, Micros(0), Micros(203), pa)
                    .with_size(832)
                    .with_requested(832),
                Event::new(Pid(1), Syscall::Read, Micros(500), Micros(100), pb).with_size(100),
            ],
        ));
        let meta1 = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 1,
        };
        log.push_case(Case::from_events(
            meta1,
            vec![Event::new(Pid(2), Syscall::Read, Micros(100), Micros(203), pa).with_size(832)],
        ));
        log
    }

    fn compute(log: &EventLog) -> (IoStatistics, MappedLog<'_>) {
        let mapped = MappedLog::new(log, &CallTopDirs::new(2));
        (IoStatistics::compute(&mapped), mapped)
    }

    #[test]
    fn relative_duration_eq8() {
        let log = sample();
        let (stats, _m) = compute(&log);
        let a = stats.get_by_name("read:/usr/lib").unwrap();
        let b = stats.get_by_name("read:/etc/passwd").unwrap();
        let total = 203.0 + 203.0 + 100.0;
        assert!((a.rel_dur - 406.0 / total).abs() < 1e-12);
        assert!((b.rel_dur - 100.0 / total).abs() < 1e-12);
        assert!((a.rel_dur + b.rel_dur - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_dur(), Micros(506));
    }

    #[test]
    fn bytes_eq9() {
        let log = sample();
        let (stats, _m) = compute(&log);
        assert_eq!(stats.get_by_name("read:/usr/lib").unwrap().bytes, 1664);
        assert_eq!(stats.get_by_name("read:/etc/passwd").unwrap().bytes, 100);
        assert_eq!(stats.max_bytes(), 1664);
    }

    #[test]
    fn mean_rate_eq13() {
        let log = sample();
        let (stats, _m) = compute(&log);
        let a = stats.get_by_name("read:/usr/lib").unwrap();
        let per_event = 832.0 / 0.000203;
        assert!((a.mean_rate_bps - per_event).abs() < 1e-6);
        assert_eq!(a.rated_events, 2);
    }

    #[test]
    fn concurrency_across_cases() {
        let log = sample();
        let (stats, _m) = compute(&log);
        let a = stats.get_by_name("read:/usr/lib").unwrap();
        // (0,203) and (100,303) overlap.
        assert_eq!(a.max_concurrency, 2);
        assert_eq!(a.max_concurrency_exact, 2);
        assert_eq!(a.case_concurrency, 2);
        let b = stats.get_by_name("read:/etc/passwd").unwrap();
        assert_eq!(b.max_concurrency, 1);
        assert_eq!(b.case_concurrency, 1);
    }

    #[test]
    fn case_concurrency_counts_distinct_cases_only() {
        // Two overlapping events from the SAME case: case concurrency 1,
        // event concurrency 2.
        let intervals = vec![
            (0usize, Micros(0), Micros(100)),
            (0usize, Micros(10), Micros(90)),
            (1usize, Micros(200), Micros(300)),
        ];
        assert_eq!(super::case_concurrency(&intervals), 1);
        let overlapping = vec![
            (0usize, Micros(0), Micros(100)),
            (1usize, Micros(10), Micros(90)),
        ];
        assert_eq!(super::case_concurrency(&overlapping), 2);
        assert_eq!(super::case_concurrency(&[]), 0);
    }

    #[test]
    fn rates_skip_zero_duration_and_sizeless_events() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let p = i.intern("/x/y");
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![
                Event::new(Pid(1), Syscall::Openat, Micros(0), Micros(10), p),
                Event::new(Pid(1), Syscall::Read, Micros(20), Micros(0), p).with_size(10),
                Event::new(Pid(1), Syscall::Read, Micros(30), Micros(5), p).with_size(50),
            ],
        ));
        let mapped = MappedLog::new(&log, &crate::mapping::CallOnly);
        let stats = IoStatistics::compute(&mapped);
        let read = stats.get_by_name("read").unwrap();
        assert_eq!(read.rated_events, 1);
        assert!((read.mean_rate_bps - 50.0 / 0.000005).abs() < 1e-6);
        let openat = stats.get_by_name("openat").unwrap();
        assert_eq!(openat.bytes, 0);
        assert_eq!(openat.rated_events, 0);
        assert_eq!(openat.mean_rate_bps, 0.0);
    }

    #[test]
    fn empty_log_statistics() {
        let log = EventLog::with_new_interner();
        let (stats, _m) = compute(&log);
        assert!(stats.is_empty());
        assert_eq!(stats.max_rel_dur(), 0.0);
        assert_eq!(stats.total_dur(), Micros::ZERO);
    }

    #[test]
    fn csv_export_has_one_row_per_activity() {
        let log = sample();
        let (stats, _m) = compute(&log);
        let csv = stats.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + stats.len());
        assert!(lines[0].starts_with("activity,events,"));
        assert!(csv.contains("read:/usr/lib,2,406,"), "{csv}");
        // Commas in activity names are quoted.
        let mut log2 = EventLog::with_new_interner();
        let i = Arc::clone(log2.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log2.push_case(Case::from_events(
            meta,
            vec![Event::new(
                Pid(1),
                Syscall::Read,
                Micros(0),
                Micros(1),
                i.intern("/a,b/c"),
            )],
        ));
        let mapped = MappedLog::new(&log2, &CallTopDirs::new(2));
        let csv2 = IoStatistics::compute(&mapped).to_csv();
        assert!(csv2.contains("\"read:/a,b/c\""), "{csv2}");
    }

    #[test]
    fn view_statistics_cover_only_the_slice() {
        let log = sample();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let snap = log.snapshot();
        let view =
            st_model::LogView::full(&log).refine(|_, e| snap.resolve(e.path).contains("/usr/lib"));
        let stats = IoStatistics::compute_view(&mapped, &view);
        // Only the two libc reads remain; rel_dur renormalizes to the
        // slice's own total (Eq. 8 over the slice).
        let a = stats.get_by_name("read:/usr/lib").unwrap();
        assert_eq!(a.events, 2);
        assert_eq!(a.bytes, 1664);
        assert!((a.rel_dur - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_dur(), Micros(406));
        // The dropped activity keeps a row (shared table) with zeros.
        let b = stats.get_by_name("read:/etc/passwd").unwrap();
        assert_eq!(b.events, 0);
        assert_eq!(b.bytes, 0);
        // The identity view reproduces the full statistics.
        let full = IoStatistics::compute_view(&mapped, &st_model::LogView::full(&log));
        assert_eq!(full.total_dur(), IoStatistics::compute(&mapped).total_dur());
    }

    #[test]
    fn lookup_by_unknown_name() {
        let log = sample();
        let (stats, _m) = compute(&log);
        assert!(stats.get_by_name("nope").is_none());
    }
}
