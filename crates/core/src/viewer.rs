//! The `DFGViewer` facade (Fig. 6 steps 5a/5b).
//!
//! ```
//! use st_core::prelude::*;
//! # use st_model::{EventLog, Case, CaseMeta, Event, Micros, Pid, Syscall};
//! # use std::sync::Arc;
//! # let mut log = EventLog::with_new_interner();
//! # let i = Arc::clone(log.interner());
//! # let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid: 0 };
//! # log.push_case(Case::from_events(meta, vec![Event::new(Pid(1), Syscall::Read,
//! #     Micros(0), Micros(10), i.intern("/usr/lib/x.so")).with_size(100)]));
//! let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
//! let dfg = Dfg::from_mapped(&mapped);
//! let stats = IoStatistics::compute(&mapped);
//! let dot = DfgViewer::new(&dfg)
//!     .with_stats(&stats)
//!     .with_styler(StatisticsColoring::by_load(&stats))
//!     .render_dot();
//! assert!(dot.starts_with("digraph"));
//! ```

use crate::color::{NoColoring, Styler};
use crate::dfg::Dfg;
use crate::render::{render_dot, render_summary, RenderOptions};
use crate::stats::IoStatistics;

/// Builder that pairs a DFG with statistics, a coloring strategy and
/// render options, mirroring the paper's `DFGViewer(dfg, styler)`.
pub struct DfgViewer<'a> {
    dfg: &'a Dfg,
    stats: Option<&'a IoStatistics>,
    styler: Box<dyn Styler + 'a>,
    options: RenderOptions,
}

impl<'a> DfgViewer<'a> {
    /// Creates a viewer with no statistics and no coloring.
    pub fn new(dfg: &'a Dfg) -> Self {
        DfgViewer {
            dfg,
            stats: None,
            styler: Box::new(NoColoring),
            options: RenderOptions::default(),
        }
    }

    /// Attaches activity statistics (adds `Load:`/`DR:` lines to nodes).
    pub fn with_stats(mut self, stats: &'a IoStatistics) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Sets the coloring strategy (Fig. 6 `styler=`).
    pub fn with_styler(mut self, styler: impl Styler + 'a) -> Self {
        self.styler = Box::new(styler);
        self
    }

    /// Overrides render options.
    pub fn with_options(mut self, options: RenderOptions) -> Self {
        self.options = options;
        self
    }

    /// Renders Graphviz DOT (the paper's `.render()`).
    pub fn render_dot(&self) -> String {
        render_dot(self.dfg, self.stats, self.styler.as_ref(), &self.options)
    }

    /// Renders the plain-text statistics/edge summary.
    pub fn render_summary(&self) -> String {
        render_summary(self.dfg, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedLog;
    use crate::mapping::CallTopDirs;
    use crate::stats::IoStatistics;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn tiny() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![
                Event::new(
                    Pid(1),
                    Syscall::Read,
                    Micros(0),
                    Micros(10),
                    i.intern("/usr/lib/x"),
                )
                .with_size(10),
                Event::new(
                    Pid(1),
                    Syscall::Write,
                    Micros(20),
                    Micros(10),
                    i.intern("/dev/pts/1"),
                )
                .with_size(5),
            ],
        ));
        log
    }

    #[test]
    fn viewer_renders_dot_and_summary() {
        let log = tiny();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = IoStatistics::compute(&mapped);
        let viewer = DfgViewer::new(&dfg).with_stats(&stats);
        let dot = viewer.render_dot();
        assert!(dot.contains("Load:"));
        let summary = viewer.render_summary();
        assert!(summary.contains("activity"));
    }

    #[test]
    fn viewer_without_stats_renders_bare_labels() {
        let log = tiny();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let dot = DfgViewer::new(&dfg).render_dot();
        assert!(!dot.contains("Load:"));
        assert!(dot.contains("read\\n/usr/lib"));
    }
}
