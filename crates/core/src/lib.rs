//! # st-core — Directly-Follows-Graph synthesis of I/O system-call traces
//!
//! This crate implements the methodology of Sec. IV of *"Inspection of
//! I/O Operations from System Call Traces using Directly-Follows-Graph"*
//! (Sankaran, Zhukov, Frings, Bientinesi — SC'24, arXiv:2408.07378): the
//! paper's primary contribution.
//!
//! The pipeline mirrors the paper's Fig. 6 workflow step by step:
//!
//! ```
//! use st_core::prelude::*;
//! use st_model::EventLog;
//! # fn demo(event_log: EventLog) {
//! // 1) filter the event log (Fig. 6 step 1)
//! let event_log = event_log.filter_path_contains("/usr/lib");
//! // 2) map events to activities (Eq. 4: call + top-2 directory levels)
//! let mapped = MappedLog::new(&event_log, &CallTopDirs::new(2));
//! // 3) construct the DFG (Sec. IV-A)
//! let dfg = Dfg::from_mapped(&mapped);
//! // 4) compute I/O statistics (Sec. IV-B)
//! let stats = IoStatistics::compute(&mapped);
//! // 5a) statistics-based coloring (Sec. IV-C.1)
//! let dot = DfgViewer::new(&dfg)
//!     .with_stats(&stats)
//!     .with_styler(StatisticsColoring::by_load(&stats))
//!     .render_dot();
//! # let _ = dot;
//! # }
//! ```
//!
//! Modules:
//!
//! * [`activity`] — activity identities and the activity name table;
//! * [`mapping`] — the partial functions `f : E ⇀ A_f` of Sec. IV
//!   ([`mapping::CallTopDirs`] is the paper's Eq. 4, [`mapping::SiteMap`]
//!   the site-variable abstraction `f̄` of Sec. V);
//! * [`mapped`] — [`mapped::MappedLog`]: the event log with its activity
//!   column materialized (Fig. 6 step 2), shared by everything below;
//! * [`activity_log`] — the multiset of activity traces
//!   `L_f(C) ∈ B(A_f*)`;
//! * [`dfg`] — DFG construction (sequential and map-reduce parallel,
//!   following the paper's scalability references [24, 25]);
//! * [`diff`](mod@diff) — cross-run DFG comparison: name-aligned structural diff
//!   with frequency normalization (the Sec. V inspection loop —
//!   SSF vs FPP, MPI-IO vs POSIX — as an operation);
//! * [`stats`] — relative duration, bytes moved, process data rate,
//!   max-concurrency (Eqs. 6–17);
//! * [`concurrency`] — the `get_max_concurrency` interval algorithms;
//! * [`timeline`] — the per-case interval plot of Fig. 5;
//! * [`color`] — statistics-based and partition-based coloring
//!   (Sec. IV-C);
//! * [`render`] — Graphviz DOT emission with the paper's node label
//!   semantics (Fig. 3a) plus plain-text summary tables;
//! * [`viewer`] — the `DFGViewer` facade of Fig. 6.

#![warn(missing_docs)]

pub mod activity;
pub mod activity_log;
pub mod color;
pub mod concurrency;
pub mod dfg;
pub mod diff;
pub mod mapped;
pub mod mapping;
pub mod render;
pub mod stats;
pub mod timeline;
pub mod viewer;

pub use activity::{ActivityId, ActivityTable};
pub use activity_log::ActivityLog;
pub use color::{PartitionColoring, Rgb, StatisticsColoring, Styler};
pub use dfg::{Dfg, DfgAccumulator, Node};
pub use diff::{diff, DfgDiff, DiffSummary, EdgeDiff, NodeDiff, Presence};
pub use mapped::MappedLog;
pub use mapping::{CallOnly, CallTopDirs, FnMapping, Mapping, PathFilter, PathSuffix, SiteMap};
pub use render::{
    render_dfg_dot, render_diff_dot, render_diff_report, render_diff_stats, render_dot,
    render_events_tsv, render_stats_text, render_summary, RenderOptions,
};
pub use stats::{ActivityStats, IoStatistics};
pub use timeline::Timeline;
pub use viewer::DfgViewer;

/// Convenience re-exports for the full Fig. 6 pipeline.
pub mod prelude {
    pub use crate::activity::{ActivityId, ActivityTable};
    pub use crate::activity_log::ActivityLog;
    pub use crate::color::{NoColoring, PartitionColoring, StatisticsColoring, Styler};
    pub use crate::dfg::{Dfg, DfgAccumulator, Node};
    pub use crate::diff::{diff, DfgDiff, DiffSummary, EdgeDiff, NodeDiff, Presence};
    pub use crate::mapped::MappedLog;
    pub use crate::mapping::{
        CallOnly, CallTopDirs, FnMapping, Mapping, PathFilter, PathSuffix, SiteMap,
    };
    pub use crate::render::{
        render_diff_dot, render_diff_report, render_diff_stats, render_dot, render_summary,
        RenderOptions,
    };
    pub use crate::stats::{ActivityStats, IoStatistics};
    pub use crate::timeline::Timeline;
    pub use crate::viewer::DfgViewer;
}
