//! Graph coloring (Sec. IV-C).
//!
//! Two strategies, both implemented as [`Styler`]s consumed by the
//! renderer:
//!
//! 1. **Statistics-based** ([`StatisticsColoring`]): nodes shaded by a
//!    statistic — "higher the value of `rd_f`, the darker the shade of
//!    blue" (Fig. 3b/3c/8). Byte-based shading is available too.
//! 2. **Partition-based** ([`PartitionColoring`]): given DFGs of two
//!    mutually exclusive event-log subsets `G` and `R`, nodes/edges
//!    exclusive to `G[L_f(G)]` are green, exclusive to `G[L_f(R)]` red,
//!    common ones uncolored (Fig. 3d, Fig. 9).

use crate::dfg::Dfg;
use crate::stats::IoStatistics;

/// An sRGB color.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// Hex form `#rrggbb` as Graphviz expects.
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }

    /// Relative luminance approximation, to decide font color on dark
    /// fills.
    pub fn luminance(self) -> f64 {
        (0.299 * self.0 as f64 + 0.587 * self.1 as f64 + 0.114 * self.2 as f64) / 255.0
    }

    /// Linear interpolation `self → other` at `t ∈ [0, 1]`.
    pub fn lerp(self, other: Rgb, t: f64) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t).round() as u8;
        Rgb(
            mix(self.0, other.0),
            mix(self.1, other.1),
            mix(self.2, other.2),
        )
    }

    /// The partition green of Sec. IV-C.
    pub const GREEN: Rgb = Rgb(0x2c, 0xa0, 0x2c);
    /// The partition red of Sec. IV-C.
    pub const RED: Rgb = Rgb(0xd6, 0x27, 0x28);
    /// Light end of the blue scale (ColorBrewer "Blues").
    pub const BLUE_LIGHT: Rgb = Rgb(0xf7, 0xfb, 0xff);
    /// Dark end of the blue scale.
    pub const BLUE_DARK: Rgb = Rgb(0x08, 0x30, 0x6b);
    /// White.
    pub const WHITE: Rgb = Rgb(0xff, 0xff, 0xff);
    /// Black.
    pub const BLACK: Rgb = Rgb(0x00, 0x00, 0x00);
}

/// Visual attributes of a node.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NodeStyle {
    /// Fill color (None = unfilled).
    pub fill: Option<Rgb>,
    /// Font color (None = default black).
    pub font: Option<Rgb>,
}

/// Visual attributes of an edge.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EdgeStyle {
    /// Stroke color (None = default black).
    pub color: Option<Rgb>,
}

/// A coloring strategy. Works on *names* so that a styler built from one
/// log's DFGs can style another DFG of the same activity space (the
/// partition DFGs and the full DFG are built from different event-log
/// subsets).
pub trait Styler {
    /// Style for the node named `name` (`"●"`/`"■"` for start/end).
    fn node_style(&self, name: &str) -> NodeStyle {
        let _ = name;
        NodeStyle::default()
    }

    /// Style for the edge `from → to`.
    fn edge_style(&self, from: &str, to: &str) -> EdgeStyle {
        let _ = (from, to);
        EdgeStyle::default()
    }
}

/// No coloring at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoColoring;

impl Styler for NoColoring {}

/// Which statistic drives [`StatisticsColoring`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMetric {
    /// Relative duration `rd_f` (the paper's default).
    Load,
    /// Total bytes moved `b_f`.
    Bytes,
}

/// Statistics-based coloring (Sec. IV-C.1): darker blue = larger value.
pub struct StatisticsColoring<'a> {
    stats: &'a IoStatistics,
    metric: ColorMetric,
    max: f64,
}

impl<'a> StatisticsColoring<'a> {
    /// Shade by relative duration, the paper's choice for Figs. 3 and 8.
    pub fn by_load(stats: &'a IoStatistics) -> Self {
        StatisticsColoring {
            stats,
            metric: ColorMetric::Load,
            max: stats.max_rel_dur().max(f64::MIN_POSITIVE),
        }
    }

    /// Shade by total bytes moved (the alternative the paper mentions).
    pub fn by_bytes(stats: &'a IoStatistics) -> Self {
        StatisticsColoring {
            stats,
            metric: ColorMetric::Bytes,
            max: (stats.max_bytes() as f64).max(f64::MIN_POSITIVE),
        }
    }

    fn value(&self, name: &str) -> Option<f64> {
        let s = self.stats.get_by_name(name)?;
        Some(match self.metric {
            ColorMetric::Load => s.rel_dur,
            ColorMetric::Bytes => s.bytes as f64,
        })
    }
}

impl Styler for StatisticsColoring<'_> {
    fn node_style(&self, name: &str) -> NodeStyle {
        let Some(v) = self.value(name) else {
            return NodeStyle::default();
        };
        let t = (v / self.max).clamp(0.0, 1.0);
        let fill = Rgb::BLUE_LIGHT.lerp(Rgb::BLUE_DARK, t);
        let font = if fill.luminance() < 0.5 {
            Some(Rgb::WHITE)
        } else {
            None
        };
        NodeStyle {
            fill: Some(fill),
            font,
        }
    }
}

/// Partition-based coloring (Sec. IV-C.2).
///
/// Built from the DFGs of the two mutually-exclusive event-log subsets;
/// applied to the DFG of the full log:
///
/// * nodes/edges only in `G[L_f(G)]` → green,
/// * only in `G[L_f(R)]` → red,
/// * in both → uncolored.
pub struct PartitionColoring<'a> {
    green: &'a Dfg,
    red: &'a Dfg,
}

impl<'a> PartitionColoring<'a> {
    /// Creates the styler from the green-subset and red-subset DFGs.
    pub fn new(green: &'a Dfg, red: &'a Dfg) -> Self {
        PartitionColoring { green, red }
    }

    fn node_partition(&self, name: &str) -> Option<Rgb> {
        let in_green = matches!(name, "●" | "■") && self.green.case_count() > 0
            || self.green.has_activity(name);
        let in_red =
            matches!(name, "●" | "■") && self.red.case_count() > 0 || self.red.has_activity(name);
        match (in_green, in_red) {
            (true, false) => Some(Rgb::GREEN),
            (false, true) => Some(Rgb::RED),
            _ => None,
        }
    }
}

impl Styler for PartitionColoring<'_> {
    fn node_style(&self, name: &str) -> NodeStyle {
        match self.node_partition(name) {
            Some(color) => NodeStyle {
                fill: Some(color),
                font: Some(Rgb::WHITE),
            },
            None => NodeStyle::default(),
        }
    }

    fn edge_style(&self, from: &str, to: &str) -> EdgeStyle {
        let g = self.green.edge_count_named(from, to) > 0;
        let r = self.red.edge_count_named(from, to) > 0;
        EdgeStyle {
            color: match (g, r) {
                (true, false) => Some(Rgb::GREEN),
                (false, true) => Some(Rgb::RED),
                _ => None,
            },
        }
    }
}

/// Produces a plain-text partition report for `full = G[L(C)]` against
/// the subset DFGs: which activities and directly-follows relations are
/// exclusive to `G` (green), exclusive to `R` (red), or common — the
/// textual form of the Sec. IV-C comparison, convenient for terminals
/// and regression logs.
pub fn partition_report(full: &Dfg, green: &Dfg, red: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut green_nodes = Vec::new();
    let mut red_nodes = Vec::new();
    let mut common_nodes = Vec::new();
    for node in full.nodes() {
        let Some(act) = node.activity() else { continue };
        let name = full.table().name(act);
        match (green.has_activity(name), red.has_activity(name)) {
            (true, false) => green_nodes.push(name),
            (false, true) => red_nodes.push(name),
            _ => common_nodes.push(name),
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "green-only activities ({}):", green_nodes.len());
    for n in &green_nodes {
        let _ = writeln!(out, "  {n}");
    }
    let _ = writeln!(out, "red-only activities ({}):", red_nodes.len());
    for n in &red_nodes {
        let _ = writeln!(out, "  {n}");
    }
    let _ = writeln!(out, "common activities ({}):", common_nodes.len());
    for n in &common_nodes {
        let _ = writeln!(out, "  {n}");
    }
    let mut green_edges = 0usize;
    let mut red_edges = 0usize;
    let mut common_edges = 0usize;
    for (from, to, _) in full.edges() {
        let f = full.node_name(from);
        let t = full.node_name(to);
        match (
            green.edge_count_named(f, t) > 0,
            red.edge_count_named(f, t) > 0,
        ) {
            (true, false) => {
                green_edges += 1;
                let _ = writeln!(out, "green-only edge: {f} -> {t}");
            }
            (false, true) => {
                red_edges += 1;
                let _ = writeln!(out, "red-only edge: {f} -> {t}");
            }
            _ => common_edges += 1,
        }
    }
    let _ = writeln!(
        out,
        "edges: {green_edges} green-only, {red_edges} red-only, {common_edges} common"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedLog;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn two_cid_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        // cid "a": read /common then write /a-only.
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![
                Event::new(
                    Pid(1),
                    Syscall::Read,
                    Micros(0),
                    Micros(10),
                    i.intern("/common/f"),
                )
                .with_size(10),
                Event::new(
                    Pid(1),
                    Syscall::Write,
                    Micros(20),
                    Micros(90),
                    i.intern("/a-only/f"),
                )
                .with_size(10),
            ],
        ));
        // cid "b": read /common then write /b-only.
        let meta = CaseMeta {
            cid: i.intern("b"),
            host: i.intern("h"),
            rid: 1,
        };
        log.push_case(Case::from_events(
            meta,
            vec![
                Event::new(
                    Pid(2),
                    Syscall::Read,
                    Micros(0),
                    Micros(10),
                    i.intern("/common/f"),
                )
                .with_size(10),
                Event::new(
                    Pid(2),
                    Syscall::Write,
                    Micros(20),
                    Micros(10),
                    i.intern("/b-only/f"),
                )
                .with_size(10),
            ],
        ));
        log
    }

    #[test]
    fn rgb_helpers() {
        assert_eq!(Rgb(0, 0, 0).to_hex(), "#000000");
        assert_eq!(Rgb(255, 16, 1).to_hex(), "#ff1001");
        assert!(Rgb::BLUE_DARK.luminance() < 0.5);
        assert!(Rgb::WHITE.luminance() > 0.9);
        assert_eq!(Rgb(0, 0, 0).lerp(Rgb(255, 255, 255), 0.0), Rgb(0, 0, 0));
        assert_eq!(
            Rgb(0, 0, 0).lerp(Rgb(255, 255, 255), 1.0),
            Rgb(255, 255, 255)
        );
        assert_eq!(Rgb(0, 0, 0).lerp(Rgb(200, 100, 50), 0.5), Rgb(100, 50, 25));
    }

    #[test]
    fn load_coloring_darkens_with_relative_duration() {
        let log = two_cid_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let styler = StatisticsColoring::by_load(&stats);
        // write:/a-only/f has 90/120 of the load — darkest.
        let heavy = styler.node_style("write:/a-only/f").fill.unwrap();
        let light = styler.node_style("write:/b-only/f").fill.unwrap();
        assert!(heavy.luminance() < light.luminance());
        // The heaviest node gets the full dark blue and white text.
        assert_eq!(heavy, Rgb::BLUE_DARK);
        assert_eq!(styler.node_style("write:/a-only/f").font, Some(Rgb::WHITE));
        // Unknown nodes (start/end) stay unstyled.
        assert_eq!(styler.node_style("●"), NodeStyle::default());
    }

    #[test]
    fn bytes_coloring_uses_byte_metric() {
        let log = two_cid_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let styler = StatisticsColoring::by_bytes(&stats);
        // read:/common/f moved 20 B (two events); the writes 10 B each.
        let common = styler.node_style("read:/common/f").fill.unwrap();
        let a_only = styler.node_style("write:/a-only/f").fill.unwrap();
        assert!(common.luminance() < a_only.luminance());
    }

    #[test]
    fn partition_coloring_three_way() {
        let log = two_cid_log();
        let (ga, gb) = log.partition_by_cid("a");
        let m = CallTopDirs::new(2);
        let full = MappedLog::new(&log, &m);
        let a = MappedLog::new(&ga, &m);
        let b = MappedLog::new(&gb, &m);
        let _dfg_full = Dfg::from_mapped(&full);
        let dfg_a = Dfg::from_mapped(&a);
        let dfg_b = Dfg::from_mapped(&b);
        let styler = PartitionColoring::new(&dfg_a, &dfg_b);
        // Exclusive nodes.
        assert_eq!(styler.node_style("write:/a-only/f").fill, Some(Rgb::GREEN));
        assert_eq!(styler.node_style("write:/b-only/f").fill, Some(Rgb::RED));
        // Shared node: uncolored.
        assert_eq!(styler.node_style("read:/common/f").fill, None);
        // Start/end occur in both partitions: uncolored.
        assert_eq!(styler.node_style("●").fill, None);
        assert_eq!(styler.node_style("■").fill, None);
        // Edges.
        assert_eq!(
            styler.edge_style("read:/common/f", "write:/a-only/f").color,
            Some(Rgb::GREEN)
        );
        assert_eq!(
            styler.edge_style("read:/common/f", "write:/b-only/f").color,
            Some(Rgb::RED)
        );
        assert_eq!(styler.edge_style("●", "read:/common/f").color, None);
        // Unknown edge: uncolored.
        assert_eq!(styler.edge_style("x", "y").color, None);
    }

    #[test]
    fn partition_report_lists_exclusives() {
        let log = two_cid_log();
        let (ga, gb) = log.partition_by_cid("a");
        let m = CallTopDirs::new(2);
        let full = Dfg::from_mapped(&MappedLog::new(&log, &m));
        let da = Dfg::from_mapped(&MappedLog::new(&ga, &m));
        let db = Dfg::from_mapped(&MappedLog::new(&gb, &m));
        let report = partition_report(&full, &da, &db);
        assert!(report.contains("green-only activities (1):"), "{report}");
        assert!(report.contains("write:/a-only/f"), "{report}");
        assert!(report.contains("red-only activities (1):"), "{report}");
        assert!(report.contains("write:/b-only/f"), "{report}");
        assert!(report.contains("common activities (1):"), "{report}");
        assert!(
            report.contains("green-only edge: read:/common/f -> write:/a-only/f"),
            "{report}"
        );
    }

    #[test]
    fn partition_with_empty_subset_colors_everything_one_way() {
        let log = two_cid_log();
        let (ga, gb) = log.partition_by_cid("zzz"); // nothing matches
        let m = CallTopDirs::new(2);
        let a = MappedLog::new(&ga, &m);
        let b = MappedLog::new(&gb, &m);
        let dfg_a = Dfg::from_mapped(&a);
        let dfg_b = Dfg::from_mapped(&b);
        let styler = PartitionColoring::new(&dfg_a, &dfg_b);
        assert_eq!(styler.node_style("read:/common/f").fill, Some(Rgb::RED));
        assert_eq!(styler.node_style("●").fill, Some(Rgb::RED));
    }
}
