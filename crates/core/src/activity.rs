//! Activity identities.
//!
//! An *activity* `a ∈ A_f` is the named entity an event maps to under a
//! mapping `f` (Sec. IV). Activity names follow the paper's prose
//! convention `"<call>:<path-abstraction>"` (e.g. `read:/usr/lib`); the
//! renderer splits on the first `:` to produce the two-line node labels
//! of Fig. 3a.

use std::collections::HashMap;

/// Dense activity identifier, valid within one [`ActivityTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActivityId(pub u32);

impl ActivityId {
    /// The index form, for direct table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only activity name table (names ↔ dense ids).
///
/// Ids are assigned in first-appearance order, which is deterministic for
/// a given event log and mapping — DOT output and tests rely on this.
#[derive(Default, Debug, Clone)]
pub struct ActivityTable {
    names: Vec<String>,
    map: HashMap<String, ActivityId>,
}

impl ActivityTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an activity name.
    pub fn intern(&mut self, name: &str) -> ActivityId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = ActivityId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// Panics when `id` belongs to a different table.
    pub fn name(&self, id: ActivityId) -> &str {
        &self.names[id.index()]
    }

    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<ActivityId> {
        self.map.get(name).copied()
    }

    /// Number of distinct activities `m = |A_f|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no activity has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ActivityId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ActivityId(i as u32), n.as_str()))
    }

    /// Splits an activity name into the `(call, path)` pair used for
    /// node labels (Fig. 3a). Names without a `:` render as a single
    /// line.
    pub fn split_label(name: &str) -> (&str, Option<&str>) {
        match name.split_once(':') {
            Some((call, path)) => (call, Some(path)),
            None => (name, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_first_appearance_order() {
        let mut t = ActivityTable::new();
        let a = t.intern("read:/usr/lib");
        let b = t.intern("write:/dev/pts");
        let a2 = t.intern("read:/usr/lib");
        assert_eq!(a, a2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "read:/usr/lib");
        assert_eq!(t.get("write:/dev/pts"), Some(b));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = ActivityTable::new();
        t.intern("c");
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    fn split_label_on_first_colon() {
        assert_eq!(
            ActivityTable::split_label("read:/usr/lib"),
            ("read", Some("/usr/lib"))
        );
        assert_eq!(
            ActivityTable::split_label("openat:$SCRATCH/ssf"),
            ("openat", Some("$SCRATCH/ssf"))
        );
        assert_eq!(ActivityTable::split_label("plain"), ("plain", None));
    }
}
