//! Rendering DFGs: Graphviz DOT with the paper's node-label semantics
//! (Fig. 3a) and plain-text summary tables.
//!
//! The node label layout is exactly the paper's:
//!
//! ```text
//! <CALL_NAME>
//! <DIRECTORY_PATH>
//! Load: <RELATIVE_DUR> (<BYTES_MOVED>)
//! DR: <MAX_CONC> x <PROCESS_DATA_RATE>
//! ```
//!
//! Activities that move no bytes (e.g. `openat`) print only the `Load:`
//! line, matching Fig. 8a. Rendering is O(V + E); the paper bounds it by
//! O(m²) for dense graphs.

use std::fmt::Write as _;

use st_model::units::{format_bytes, format_rate_mbs};

use crate::color::{NoColoring, Rgb, Styler};
use crate::dfg::{Dfg, Node};
use crate::stats::IoStatistics;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Include `Load:` / `DR:` statistic lines in node labels.
    pub show_stats: bool,
    /// Include the `Ranks:` case-concurrency line (Fig. 3c annotation).
    pub show_ranks: bool,
    /// Graphviz `rankdir` (the paper's figures flow top-to-bottom).
    pub rankdir: String,
    /// Name of the digraph.
    pub graph_name: String,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            show_stats: true,
            show_ranks: false,
            rankdir: "TB".to_string(),
            graph_name: "DFG".to_string(),
        }
    }
}

/// Renders `dfg` as Graphviz DOT.
///
/// `stats` may come from a *different* (typically wider) log than the
/// DFG, exactly as the paper colors Fig. 3b/3c with statistics computed
/// over the combined log; lookups are by activity name.
pub fn render_dot(
    dfg: &Dfg,
    stats: Option<&IoStatistics>,
    styler: &dyn Styler,
    opts: &RenderOptions,
) -> String {
    let mut out = String::new();
    dot_preamble(&mut out, opts, "#ffffff");

    for node in dfg.nodes() {
        let id = node_id(dfg, node);
        match node {
            Node::Start => dot_marker(&mut out, &id, "●", "#000000"),
            Node::End => dot_marker(&mut out, &id, "■", "#000000"),
            Node::Act(act) => {
                let name = dfg.table().name(act);
                let label = node_label(name, stats, opts);
                let style = styler.node_style(name);
                let mut attrs = format!("label=\"{}\"", escape(&label));
                if let Some(fill) = style.fill {
                    let _ = write!(attrs, ", fillcolor=\"{}\"", fill.to_hex());
                }
                if let Some(font) = style.font {
                    let _ = write!(attrs, ", fontcolor=\"{}\"", font.to_hex());
                }
                let _ = writeln!(out, "  {id} [{attrs}];");
            }
        }
    }

    for (from, to, count) in dfg.edges() {
        let from_id = node_id(dfg, from);
        let to_id = node_id(dfg, to);
        let style = styler.edge_style(dfg.node_name(from), dfg.node_name(to));
        let mut attrs = format!("label=\"{count}\"");
        if let Some(color) = style.color {
            let _ = write!(
                attrs,
                ", color=\"{}\", fontcolor=\"{}\"",
                color.to_hex(),
                color.to_hex()
            );
        }
        let _ = writeln!(out, "  {from_id} -> {to_id} [{attrs}];");
    }

    out.push_str("}\n");
    out
}

/// Renders `dfg` with default options and no coloring.
pub fn render_dot_plain(dfg: &Dfg) -> String {
    render_dot(dfg, None, &NoColoring, &RenderOptions::default())
}

/// Builds the multi-line node label of Fig. 3a.
fn node_label(name: &str, stats: Option<&IoStatistics>, opts: &RenderOptions) -> String {
    let (call, path) = crate::activity::ActivityTable::split_label(name);
    let mut label = String::from(call);
    if let Some(path) = path {
        label.push('\n');
        label.push_str(path);
    }
    if opts.show_stats {
        if let Some(s) = stats.and_then(|st| st.get_by_name(name)) {
            let _ = write!(label, "\nLoad:{:.2}", s.rel_dur);
            if s.bytes > 0 {
                let _ = write!(label, " ({})", format_bytes(s.bytes as f64));
                let _ = write!(
                    label,
                    "\nDR: {}x{}",
                    s.max_concurrency_exact,
                    format_rate_mbs(s.mean_rate_bps)
                );
            }
            if opts.show_ranks {
                let _ = write!(label, "\nRanks: {}", s.case_concurrency);
            }
        }
    }
    label
}

fn node_id(dfg: &Dfg, node: Node) -> String {
    match node {
        Node::Start => "start".to_string(),
        Node::End => "end".to_string(),
        Node::Act(id) => {
            let _ = dfg;
            format!("n{}", id.0)
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Digraph header + node/edge defaults shared by all DOT renderers;
/// only the default node fill varies.
fn dot_preamble(out: &mut String, opts: &RenderOptions, node_fill: &str) {
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&opts.graph_name));
    let _ = writeln!(out, "  rankdir={};", opts.rankdir);
    let _ = writeln!(
        out,
        "  node [shape=box, style=\"rounded,filled\", fillcolor=\"{node_fill}\", fontname=\"Helvetica\"];"
    );
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\"];");
}

/// The `●`/`■` marker node line shared by all DOT renderers; only the
/// fill varies (black normally, red/green for one-sided diff markers).
fn dot_marker(out: &mut String, id: &str, label: &str, fill: &str) {
    let shape = if label == "●" { "circle" } else { "square" };
    let _ = writeln!(
        out,
        "  {id} [label=\"{label}\", shape={shape}, style=filled, fillcolor=\"{fill}\", fontcolor=\"#ffffff\", width=0.25, fixedsize=true];"
    );
}

/// Renders the per-node statistics rows of a figure as a plain-text
/// table — the series the paper reports inside each node, one row per
/// activity, plus the edge list. This is what the benchmark harness
/// prints for paper-vs-measured comparison.
pub fn render_summary(dfg: &Dfg, stats: Option<&IoStatistics>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:>8} {:>8} {:>12} {:>6} {:>14}",
        "activity", "events", "load", "bytes", "mc", "rate"
    );
    for node in dfg.nodes() {
        let Node::Act(act) = node else { continue };
        let name = dfg.table().name(act);
        let occurrences = dfg.occurrences(node);
        match stats.and_then(|st| st.get_by_name(name)) {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{:<42} {:>8} {:>8.2} {:>12} {:>6} {:>14}",
                    display_name(name),
                    occurrences,
                    s.rel_dur,
                    if s.bytes > 0 {
                        format_bytes(s.bytes as f64)
                    } else {
                        "-".to_string()
                    },
                    s.max_concurrency_exact,
                    if s.bytes > 0 {
                        format_rate_mbs(s.mean_rate_bps)
                    } else {
                        "-".to_string()
                    },
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<42} {:>8} {:>8} {:>12} {:>6} {:>14}",
                    display_name(name),
                    occurrences,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
        }
    }
    let _ = writeln!(out, "edges ({} distinct):", dfg.edges().count());
    for (from, to, count) in dfg.edges() {
        let _ = writeln!(
            out,
            "  {} -> {}  [{count}]",
            display_name(dfg.node_name(from)),
            display_name(dfg.node_name(to))
        );
    }
    out
}

fn display_name(name: &str) -> String {
    name.replace('\n', " ")
}

/// Gray used for structure shared by both sides of a diff.
const DIFF_SHARED_FILL: &str = "#f0f0f0";
/// Gray used for shared edges (kept darker than the fill for contrast).
const DIFF_SHARED_EDGE: &str = "#808080";

/// Renders a [`crate::diff::DfgDiff`] as annotated Graphviz DOT.
///
/// Diverging color scheme: structure present in both runs is gray,
/// A-only structure (removed going A → B) is red, B-only structure
/// (added) is green — the same palette as the paper's partition
/// coloring (Sec. IV-C.2), reused for the cross-run comparison. Common
/// edges whose relative frequency shifted carry a `countA→countB`
/// label with the frequency delta in percentage points and a pen width
/// scaled by the magnitude of the shift, so the hot shifts dominate
/// visually.
///
/// Output is deterministic: nodes and edges follow the [`crate::diff::DfgDiff`]
/// order (`●`, activities lexicographically, `■`).
pub fn render_diff_dot(diff: &crate::diff::DfgDiff, opts: &RenderOptions) -> String {
    use crate::diff::Presence;

    let mut out = String::new();
    dot_preamble(&mut out, opts, DIFF_SHARED_FILL);

    // Stable node ids by position in the deterministic node order.
    let mut ids: std::collections::HashMap<&str, String> = std::collections::HashMap::new();
    for (idx, node) in diff.nodes().iter().enumerate() {
        let id = match node.name.as_str() {
            "●" => "start".to_string(),
            "■" => "end".to_string(),
            _ => format!("d{idx}"),
        };
        let (fill, font) = match node.presence {
            Presence::AOnly => (Rgb::RED.to_hex(), Some(Rgb::WHITE)),
            Presence::BOnly => (Rgb::GREEN.to_hex(), Some(Rgb::WHITE)),
            Presence::Both => (DIFF_SHARED_FILL.to_string(), None),
        };
        match node.name.as_str() {
            "●" | "■" => {
                let fill = match node.presence {
                    Presence::Both => Rgb::BLACK.to_hex(),
                    _ => fill.clone(),
                };
                dot_marker(&mut out, &id, &node.name, &fill);
            }
            name => {
                let label = node_label(name, None, opts);
                let mut attrs = format!("label=\"{}\"", escape(&label));
                let _ = write!(attrs, ", fillcolor=\"{fill}\"");
                if let Some(font) = font {
                    let _ = write!(attrs, ", fontcolor=\"{}\"", font.to_hex());
                }
                let _ = writeln!(out, "  {id} [{attrs}];");
            }
        }
        ids.insert(node.name.as_str(), id);
    }

    for edge in diff.edges() {
        let (Some(from), Some(to)) = (ids.get(edge.from.as_str()), ids.get(edge.to.as_str()))
        else {
            continue;
        };
        let color = match edge.presence {
            Presence::AOnly => Rgb::RED.to_hex(),
            Presence::BOnly => Rgb::GREEN.to_hex(),
            Presence::Both => DIFF_SHARED_EDGE.to_string(),
        };
        let label = match edge.presence {
            Presence::AOnly => format!("{}", edge.count_a),
            Presence::BOnly => format!("{}", edge.count_b),
            Presence::Both if edge.is_changed() => format!(
                "{}→{} ({:+.1}pp)",
                edge.count_a,
                edge.count_b,
                edge.delta_freq() * 100.0
            ),
            Presence::Both => format!("{}", edge.count_a),
        };
        // 1.0 for no shift, growing with |Δ frequency| up to 7.0.
        let penwidth = 1.0 + (edge.delta_freq().abs() * 25.0).min(6.0);
        let _ = writeln!(
            out,
            "  {from} -> {to} [label=\"{label}\", color=\"{color}\", fontcolor=\"{color}\", penwidth={penwidth:.2}];"
        );
    }

    out.push_str("}\n");
    out
}

/// Renders a [`crate::diff::DfgDiff`] as a deterministic plain-text report: the
/// summary block, then A-only / B-only nodes and edges, then common
/// edges whose frequency shifted, ordered by the magnitude of the shift
/// (ties broken by name). Percentages are relative edge frequencies
/// within each run; `pp` deltas are percentage points.
pub fn render_diff_report(diff: &crate::diff::DfgDiff) -> String {
    let summary = diff.summary();
    let mut out = String::new();
    let _ = writeln!(out, "DFG diff (A → B)");
    let _ = writeln!(
        out,
        "  A: {} cases, {} edge observations",
        diff.case_count_a(),
        diff.total_edges_a()
    );
    let _ = writeln!(
        out,
        "  B: {} cases, {} edge observations",
        diff.case_count_b(),
        diff.total_edges_b()
    );
    let _ = writeln!(
        out,
        "  nodes: {} common, {} A-only, {} B-only",
        summary.nodes_common, summary.nodes_removed, summary.nodes_added
    );
    let _ = writeln!(
        out,
        "  edges: {} common ({} changed), {} A-only, {} B-only",
        summary.edges_unchanged + summary.edges_changed,
        summary.edges_changed,
        summary.edges_removed,
        summary.edges_added
    );
    let _ = writeln!(
        out,
        "  total-variation distance: {:.4}",
        diff.total_variation()
    );
    if diff.is_empty() {
        let _ = writeln!(out, "  graphs are identical");
        return out;
    }

    let pct = |f: f64| format!("{:.2}%", f * 100.0);
    if summary.nodes_removed > 0 {
        let _ = writeln!(out, "A-only nodes:");
        for n in diff.nodes_removed() {
            let _ = writeln!(out, "  {} ({} occ)", n.name, n.occ_a);
        }
    }
    if summary.nodes_added > 0 {
        let _ = writeln!(out, "B-only nodes:");
        for n in diff.nodes_added() {
            let _ = writeln!(out, "  {} ({} occ)", n.name, n.occ_b);
        }
    }
    if summary.edges_removed > 0 {
        let _ = writeln!(out, "A-only edges:");
        for e in diff.edges_removed() {
            let _ = writeln!(
                out,
                "  {} -> {}  [{} obs, {}]",
                e.from,
                e.to,
                e.count_a,
                pct(e.freq_a)
            );
        }
    }
    if summary.edges_added > 0 {
        let _ = writeln!(out, "B-only edges:");
        for e in diff.edges_added() {
            let _ = writeln!(
                out,
                "  {} -> {}  [{} obs, {}]",
                e.from,
                e.to,
                e.count_b,
                pct(e.freq_b)
            );
        }
    }
    if summary.edges_changed > 0 {
        let _ = writeln!(out, "changed edges (by |Δ frequency|):");
        let mut changed: Vec<_> = diff.edges_changed().collect();
        changed.sort_by(|x, y| {
            y.delta_freq()
                .abs()
                .partial_cmp(&x.delta_freq().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (&x.from, &x.to).cmp(&(&y.from, &y.to)))
        });
        for e in changed {
            let _ = writeln!(
                out,
                "  {} -> {}  {} ({}) -> {} ({})  Δ{:+} obs, {:+.2}pp",
                e.from,
                e.to,
                e.count_a,
                pct(e.freq_a),
                e.count_b,
                pct(e.freq_b),
                e.delta_count(),
                e.delta_freq() * 100.0
            );
        }
    }
    out
}

/// Renders the statistics layer of a cross-run comparison: per-activity
/// Load (relative duration, Eq. 8) and process data-rate (Eq. 13)
/// deltas computed from the [`IoStatistics`] of both runs, plus the
/// bytes-moved shift. Activities are ordered by |Δ Load| (ties by
/// name); rows where neither Load, rate nor bytes move are elided.
/// Activities missing from one side show `-` there (their other-side
/// values still rank them).
pub fn render_diff_stats(
    diff: &crate::diff::DfgDiff,
    stats_a: &IoStatistics,
    stats_b: &IoStatistics,
) -> String {
    struct Row<'a> {
        name: &'a str,
        a: Option<&'a crate::stats::ActivityStats>,
        b: Option<&'a crate::stats::ActivityStats>,
    }
    impl Row<'_> {
        fn load(s: Option<&crate::stats::ActivityStats>) -> f64 {
            s.map(|s| s.rel_dur).unwrap_or(0.0)
        }
        fn rate(s: Option<&crate::stats::ActivityStats>) -> f64 {
            s.map(|s| s.mean_rate_bps).unwrap_or(0.0)
        }
        fn bytes(s: Option<&crate::stats::ActivityStats>) -> u64 {
            s.map(|s| s.bytes).unwrap_or(0)
        }
        fn delta_load(&self) -> f64 {
            Self::load(self.b) - Self::load(self.a)
        }
        fn is_still(&self) -> bool {
            self.delta_load().abs() < 1e-12
                && (Self::rate(self.b) - Self::rate(self.a)).abs() < 1e-9
                && Self::bytes(self.a) == Self::bytes(self.b)
        }
    }

    let mut rows: Vec<Row<'_>> = diff
        .nodes()
        .iter()
        .filter(|n| n.name != "●" && n.name != "■")
        .map(|n| Row {
            name: &n.name,
            // A node can be present in a run yet carry no statistics row
            // (stats computed over a narrower slice); treat as absent.
            a: stats_a.get_by_name(&n.name),
            b: stats_b.get_by_name(&n.name),
        })
        .filter(|r| !r.is_still())
        .collect();
    rows.sort_by(|x, y| {
        y.delta_load()
            .abs()
            .partial_cmp(&x.delta_load().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(y.name))
    });

    let mut out = String::new();
    let _ = writeln!(out, "per-activity statistics (A → B):");
    if rows.is_empty() {
        let _ = writeln!(out, "  no Load, data-rate or byte shifts");
        return out;
    }
    let side = |s: Option<&crate::stats::ActivityStats>| match s {
        Some(s) => format!(
            "Load {:.2}% ({})  DR {}",
            s.rel_dur * 100.0,
            if s.bytes > 0 {
                format_bytes(s.bytes as f64)
            } else {
                "-".to_string()
            },
            if s.rated_events > 0 {
                format_rate_mbs(s.mean_rate_bps)
            } else {
                "-".to_string()
            },
        ),
        None => "-".to_string(),
    };
    for r in rows {
        let _ = writeln!(
            out,
            "  {}\n    A: {}\n    B: {}  [Δ Load {:+.2}pp]",
            r.name,
            side(r.a),
            side(r.b),
            r.delta_load() * 100.0
        );
    }
    out
}

/// Renders a log slice as the `stinspect query --emit events` TSV body
/// (header + one row per event, sizes as `-` when unknown).
///
/// Shared between the CLI and the live service so an HTTP `/query`
/// response is byte-identical to the offline command over the same
/// slice.
pub fn render_events_tsv(
    view: &st_model::LogView<'_>,
    snap: &st_model::InternerSnapshot,
) -> String {
    let mut body = String::from("cid\thost\trid\tpid\tcall\tstart\tdur\tpath\tsize\tok\n");
    for (meta, e) in view.iter_events() {
        let call = match e.call {
            st_model::Syscall::Other(sym) => snap.resolve(sym).to_string(),
            named => named.static_name().unwrap_or("?").to_string(),
        };
        let _ = writeln!(
            body,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            snap.resolve(meta.cid),
            snap.resolve(meta.host),
            meta.rid,
            e.pid,
            call,
            e.start.format_time_of_day(),
            e.dur.format_duration(),
            snap.resolve(e.path),
            e.size
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string()),
            e.ok,
        );
    }
    body
}

/// Renders a log slice as the `stinspect query --emit stats` text body
/// (match-count header + [`render_summary`] over the slice's DFG and
/// statistics). Shared between the CLI and the live service.
pub fn render_stats_text(
    mapped: &crate::mapped::MappedLog<'_>,
    view: &st_model::LogView<'_>,
) -> String {
    let dfg = Dfg::from_mapped_view(mapped, view);
    let stats = IoStatistics::compute_view(mapped, view);
    format!(
        "{} events in {} case(s)\n{}",
        view.event_count(),
        view.case_count(),
        render_summary(&dfg, Some(&stats))
    )
}

/// Renders a log slice as the `stinspect query --emit dfg` DOT body
/// (Load-colored, default options). Shared between the CLI and the
/// live service.
pub fn render_dfg_dot(
    mapped: &crate::mapped::MappedLog<'_>,
    view: &st_model::LogView<'_>,
) -> String {
    let dfg = Dfg::from_mapped_view(mapped, view);
    let stats = IoStatistics::compute_view(mapped, view);
    render_dot(
        &dfg,
        Some(&stats),
        &crate::color::StatisticsColoring::by_load(&stats),
        &RenderOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{PartitionColoring, StatisticsColoring};
    use crate::mapped::MappedLog;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn mini_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for (cid, rid, extra) in [("a", 0u32, false), ("b", 1, true)] {
            let meta = CaseMeta {
                cid: i.intern(cid),
                host: i.intern("h"),
                rid,
            };
            let mut events = vec![
                Event::new(
                    Pid(rid + 1),
                    Syscall::Read,
                    Micros(0),
                    Micros(203),
                    i.intern("/usr/lib/libc.so"),
                )
                .with_size(832),
                Event::new(
                    Pid(rid + 1),
                    Syscall::Write,
                    Micros(300),
                    Micros(111),
                    i.intern("/dev/pts/7"),
                )
                .with_size(50),
            ];
            if extra {
                events.push(
                    Event::new(
                        Pid(rid + 1),
                        Syscall::Read,
                        Micros(400),
                        Micros(37),
                        i.intern("/etc/passwd"),
                    )
                    .with_size(1612),
                );
            }
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    #[test]
    fn dot_contains_fig3a_label_shape() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let dot = render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_load(&stats),
            &RenderOptions::default(),
        );
        assert!(dot.starts_with("digraph"));
        // Two-line node name + Load + DR lines, \n-escaped.
        assert!(dot.contains("read\\n/usr/lib\\nLoad:"), "{dot}");
        assert!(dot.contains("DR: "), "{dot}");
        assert!(dot.contains("MB/s"), "{dot}");
        // Start/end markers.
        assert!(dot.contains("label=\"●\""));
        assert!(dot.contains("label=\"■\""));
        // Edge labels carry counts.
        assert!(dot.contains("start -> n0 [label=\"2\"]"), "{dot}");
        // Fill colors from the load styler appear.
        assert!(dot.contains("fillcolor=\"#"), "{dot}");
    }

    #[test]
    fn openat_like_nodes_skip_dr_line() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![Event::new(
                Pid(1),
                Syscall::Openat,
                Micros(0),
                Micros(10),
                i.intern("/scratch/f"),
            )],
        ));
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let dot = render_dot(&dfg, Some(&stats), &NoColoring, &RenderOptions::default());
        assert!(dot.contains("Load:1.00"), "{dot}");
        assert!(!dot.contains("DR:"), "{dot}");
    }

    #[test]
    fn ranks_line_appears_when_enabled() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let opts = RenderOptions {
            show_ranks: true,
            ..Default::default()
        };
        let dot = render_dot(&dfg, Some(&stats), &NoColoring, &opts);
        assert!(dot.contains("Ranks: "), "{dot}");
    }

    #[test]
    fn partition_colored_edges_render_with_color() {
        let log = mini_log();
        let (ga, gb) = log.partition_by_cid("a");
        let m = CallTopDirs::new(2);
        let full = MappedLog::new(&log, &m);
        let dfg = crate::dfg::Dfg::from_mapped(&full);
        let dfg_a = crate::dfg::Dfg::from_mapped(&MappedLog::new(&ga, &m));
        let dfg_b = crate::dfg::Dfg::from_mapped(&MappedLog::new(&gb, &m));
        let styler = PartitionColoring::new(&dfg_a, &dfg_b);
        let dot = render_dot(&dfg, None, &styler, &RenderOptions::default());
        // read:/etc/passwd only exists in b: red node.
        assert!(
            dot.contains(&format!(
                "fillcolor=\"{}\"",
                crate::color::Rgb::RED.to_hex()
            )),
            "{dot}"
        );
        // No green-only nodes here (a is a subset of b's structure), but
        // the a-only edge write:/dev/pts -> ■ vs b's write -> read.
        assert!(
            dot.contains(&format!("color=\"{}\"", crate::color::Rgb::GREEN.to_hex()))
                || dot.contains(&format!("color=\"{}\"", crate::color::Rgb::RED.to_hex())),
            "{dot}"
        );
    }

    #[test]
    fn deterministic_output() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let a = render_dot_plain(&dfg);
        let b = render_dot_plain(&dfg);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_lists_activities_and_edges() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let summary = render_summary(&dfg, Some(&stats));
        assert!(
            summary.contains("read /usr/lib") || summary.contains("read:/usr/lib"),
            "{summary}"
        );
        assert!(summary.contains("edges ("), "{summary}");
        assert!(summary.contains("● -> "), "{summary}");
        assert!(summary.contains(" -> ■"), "{summary}");
    }

    fn diff_fixture() -> (crate::dfg::Dfg, crate::dfg::Dfg) {
        let m = CallTopDirs::new(2);
        let log_a = {
            let mut log = EventLog::with_new_interner();
            let i = Arc::clone(log.interner());
            let meta = CaseMeta {
                cid: i.intern("a"),
                host: i.intern("h"),
                rid: 0,
            };
            log.push_case(Case::from_events(
                meta,
                vec![
                    Event::new(
                        Pid(1),
                        Syscall::Read,
                        Micros(0),
                        Micros(1),
                        i.intern("/shared/f"),
                    ),
                    Event::new(
                        Pid(1),
                        Syscall::Write,
                        Micros(2),
                        Micros(1),
                        i.intern("/a-only/f"),
                    ),
                ],
            ));
            log
        };
        let log_b = {
            let mut log = EventLog::with_new_interner();
            let i = Arc::clone(log.interner());
            let meta = CaseMeta {
                cid: i.intern("b"),
                host: i.intern("h"),
                rid: 0,
            };
            log.push_case(Case::from_events(
                meta,
                vec![
                    Event::new(
                        Pid(2),
                        Syscall::Read,
                        Micros(0),
                        Micros(1),
                        i.intern("/shared/f"),
                    ),
                    Event::new(
                        Pid(2),
                        Syscall::Read,
                        Micros(2),
                        Micros(1),
                        i.intern("/shared/f"),
                    ),
                    Event::new(
                        Pid(2),
                        Syscall::Write,
                        Micros(4),
                        Micros(1),
                        i.intern("/b-only/f"),
                    ),
                ],
            ));
            log
        };
        (
            crate::dfg::Dfg::from_mapped(&MappedLog::new(&log_a, &m)),
            crate::dfg::Dfg::from_mapped(&MappedLog::new(&log_b, &m)),
        )
    }

    #[test]
    fn diff_dot_uses_diverging_palette() {
        let (a, b) = diff_fixture();
        let d = crate::diff::diff(&a, &b);
        let dot = render_diff_dot(&d, &RenderOptions::default());
        assert!(dot.starts_with("digraph"), "{dot}");
        // A-only structure red, B-only green, shared gray.
        assert!(
            dot.contains(&format!("fillcolor=\"{}\"", Rgb::RED.to_hex())),
            "{dot}"
        );
        assert!(
            dot.contains(&format!("fillcolor=\"{}\"", Rgb::GREEN.to_hex())),
            "{dot}"
        );
        assert!(
            dot.contains(&format!("fillcolor=\"{DIFF_SHARED_FILL}\"")),
            "{dot}"
        );
        assert!(
            dot.contains(&format!("color=\"{DIFF_SHARED_EDGE}\"")),
            "{dot}"
        );
        // The shared ●→read edge changed frequency: scaled pen width + Δ label.
        assert!(dot.contains("pp)"), "{dot}");
        // Deterministic.
        assert_eq!(dot, render_diff_dot(&d, &RenderOptions::default()));
    }

    #[test]
    fn diff_report_lists_sections_deterministically() {
        let (a, b) = diff_fixture();
        let d = crate::diff::diff(&a, &b);
        let report = render_diff_report(&d);
        assert!(report.contains("DFG diff (A → B)"), "{report}");
        assert!(
            report.contains("A-only nodes:\n  write:/a-only/f"),
            "{report}"
        );
        assert!(
            report.contains("B-only nodes:\n  write:/b-only/f"),
            "{report}"
        );
        assert!(report.contains("total-variation distance:"), "{report}");
        assert!(report.contains("changed edges"), "{report}");
        assert_eq!(report, render_diff_report(&d));
    }

    #[test]
    fn self_diff_report_says_identical() {
        let (a, _) = diff_fixture();
        let d = crate::diff::diff(&a, &a);
        let report = render_diff_report(&d);
        assert!(report.contains("graphs are identical"), "{report}");
        assert!(
            report.contains("total-variation distance: 0.0000"),
            "{report}"
        );
    }

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
    }
}
