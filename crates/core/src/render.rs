//! Rendering DFGs: Graphviz DOT with the paper's node-label semantics
//! (Fig. 3a) and plain-text summary tables.
//!
//! The node label layout is exactly the paper's:
//!
//! ```text
//! <CALL_NAME>
//! <DIRECTORY_PATH>
//! Load: <RELATIVE_DUR> (<BYTES_MOVED>)
//! DR: <MAX_CONC> x <PROCESS_DATA_RATE>
//! ```
//!
//! Activities that move no bytes (e.g. `openat`) print only the `Load:`
//! line, matching Fig. 8a. Rendering is O(V + E); the paper bounds it by
//! O(m²) for dense graphs.

use std::fmt::Write as _;

use st_model::units::{format_bytes, format_rate_mbs};

use crate::color::{NoColoring, Styler};
use crate::dfg::{Dfg, Node};
use crate::stats::IoStatistics;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Include `Load:` / `DR:` statistic lines in node labels.
    pub show_stats: bool,
    /// Include the `Ranks:` case-concurrency line (Fig. 3c annotation).
    pub show_ranks: bool,
    /// Graphviz `rankdir` (the paper's figures flow top-to-bottom).
    pub rankdir: String,
    /// Name of the digraph.
    pub graph_name: String,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            show_stats: true,
            show_ranks: false,
            rankdir: "TB".to_string(),
            graph_name: "DFG".to_string(),
        }
    }
}

/// Renders `dfg` as Graphviz DOT.
///
/// `stats` may come from a *different* (typically wider) log than the
/// DFG, exactly as the paper colors Fig. 3b/3c with statistics computed
/// over the combined log; lookups are by activity name.
pub fn render_dot(
    dfg: &Dfg,
    stats: Option<&IoStatistics>,
    styler: &dyn Styler,
    opts: &RenderOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&opts.graph_name));
    let _ = writeln!(out, "  rankdir={};", opts.rankdir);
    let _ = writeln!(
        out,
        "  node [shape=box, style=\"rounded,filled\", fillcolor=\"#ffffff\", fontname=\"Helvetica\"];"
    );
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\"];");

    for node in dfg.nodes() {
        let id = node_id(dfg, node);
        match node {
            Node::Start => {
                let _ = writeln!(
                    out,
                    "  {id} [label=\"●\", shape=circle, style=filled, fillcolor=\"#000000\", fontcolor=\"#ffffff\", width=0.25, fixedsize=true];"
                );
            }
            Node::End => {
                let _ = writeln!(
                    out,
                    "  {id} [label=\"■\", shape=square, style=filled, fillcolor=\"#000000\", fontcolor=\"#ffffff\", width=0.25, fixedsize=true];"
                );
            }
            Node::Act(act) => {
                let name = dfg.table().name(act);
                let label = node_label(name, stats, opts);
                let style = styler.node_style(name);
                let mut attrs = format!("label=\"{}\"", escape(&label));
                if let Some(fill) = style.fill {
                    let _ = write!(attrs, ", fillcolor=\"{}\"", fill.to_hex());
                }
                if let Some(font) = style.font {
                    let _ = write!(attrs, ", fontcolor=\"{}\"", font.to_hex());
                }
                let _ = writeln!(out, "  {id} [{attrs}];");
            }
        }
    }

    for (from, to, count) in dfg.edges() {
        let from_id = node_id(dfg, from);
        let to_id = node_id(dfg, to);
        let style = styler.edge_style(dfg.node_name(from), dfg.node_name(to));
        let mut attrs = format!("label=\"{count}\"");
        if let Some(color) = style.color {
            let _ = write!(
                attrs,
                ", color=\"{}\", fontcolor=\"{}\"",
                color.to_hex(),
                color.to_hex()
            );
        }
        let _ = writeln!(out, "  {from_id} -> {to_id} [{attrs}];");
    }

    out.push_str("}\n");
    out
}

/// Renders `dfg` with default options and no coloring.
pub fn render_dot_plain(dfg: &Dfg) -> String {
    render_dot(dfg, None, &NoColoring, &RenderOptions::default())
}

/// Builds the multi-line node label of Fig. 3a.
fn node_label(name: &str, stats: Option<&IoStatistics>, opts: &RenderOptions) -> String {
    let (call, path) = crate::activity::ActivityTable::split_label(name);
    let mut label = String::from(call);
    if let Some(path) = path {
        label.push('\n');
        label.push_str(path);
    }
    if opts.show_stats {
        if let Some(s) = stats.and_then(|st| st.get_by_name(name)) {
            let _ = write!(label, "\nLoad:{:.2}", s.rel_dur);
            if s.bytes > 0 {
                let _ = write!(label, " ({})", format_bytes(s.bytes as f64));
                let _ = write!(
                    label,
                    "\nDR: {}x{}",
                    s.max_concurrency_exact,
                    format_rate_mbs(s.mean_rate_bps)
                );
            }
            if opts.show_ranks {
                let _ = write!(label, "\nRanks: {}", s.case_concurrency);
            }
        }
    }
    label
}

fn node_id(dfg: &Dfg, node: Node) -> String {
    match node {
        Node::Start => "start".to_string(),
        Node::End => "end".to_string(),
        Node::Act(id) => {
            let _ = dfg;
            format!("n{}", id.0)
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders the per-node statistics rows of a figure as a plain-text
/// table — the series the paper reports inside each node, one row per
/// activity, plus the edge list. This is what the benchmark harness
/// prints for paper-vs-measured comparison.
pub fn render_summary(dfg: &Dfg, stats: Option<&IoStatistics>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:>8} {:>8} {:>12} {:>6} {:>14}",
        "activity", "events", "load", "bytes", "mc", "rate"
    );
    for node in dfg.nodes() {
        let Node::Act(act) = node else { continue };
        let name = dfg.table().name(act);
        let occurrences = dfg.occurrences(node);
        match stats.and_then(|st| st.get_by_name(name)) {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{:<42} {:>8} {:>8.2} {:>12} {:>6} {:>14}",
                    display_name(name),
                    occurrences,
                    s.rel_dur,
                    if s.bytes > 0 { format_bytes(s.bytes as f64) } else { "-".to_string() },
                    s.max_concurrency_exact,
                    if s.bytes > 0 { format_rate_mbs(s.mean_rate_bps) } else { "-".to_string() },
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<42} {:>8} {:>8} {:>12} {:>6} {:>14}",
                    display_name(name),
                    occurrences,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
        }
    }
    let _ = writeln!(out, "edges ({} distinct):", dfg.edges().count());
    for (from, to, count) in dfg.edges() {
        let _ = writeln!(
            out,
            "  {} -> {}  [{count}]",
            display_name(dfg.node_name(from)),
            display_name(dfg.node_name(to))
        );
    }
    out
}

fn display_name(name: &str) -> String {
    name.replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{PartitionColoring, StatisticsColoring};
    use crate::mapped::MappedLog;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn mini_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for (cid, rid, extra) in [("a", 0u32, false), ("b", 1, true)] {
            let meta = CaseMeta { cid: i.intern(cid), host: i.intern("h"), rid };
            let mut events = vec![
                Event::new(Pid(rid + 1), Syscall::Read, Micros(0), Micros(203), i.intern("/usr/lib/libc.so"))
                    .with_size(832),
                Event::new(Pid(rid + 1), Syscall::Write, Micros(300), Micros(111), i.intern("/dev/pts/7"))
                    .with_size(50),
            ];
            if extra {
                events.push(
                    Event::new(Pid(rid + 1), Syscall::Read, Micros(400), Micros(37), i.intern("/etc/passwd"))
                        .with_size(1612),
                );
            }
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    #[test]
    fn dot_contains_fig3a_label_shape() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let dot = render_dot(
            &dfg,
            Some(&stats),
            &StatisticsColoring::by_load(&stats),
            &RenderOptions::default(),
        );
        assert!(dot.starts_with("digraph"));
        // Two-line node name + Load + DR lines, \n-escaped.
        assert!(dot.contains("read\\n/usr/lib\\nLoad:"), "{dot}");
        assert!(dot.contains("DR: "), "{dot}");
        assert!(dot.contains("MB/s"), "{dot}");
        // Start/end markers.
        assert!(dot.contains("label=\"●\""));
        assert!(dot.contains("label=\"■\""));
        // Edge labels carry counts.
        assert!(dot.contains("start -> n0 [label=\"2\"]"), "{dot}");
        // Fill colors from the load styler appear.
        assert!(dot.contains("fillcolor=\"#"), "{dot}");
    }

    #[test]
    fn openat_like_nodes_skip_dr_line() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid: 0 };
        log.push_case(Case::from_events(
            meta,
            vec![Event::new(Pid(1), Syscall::Openat, Micros(0), Micros(10), i.intern("/scratch/f"))],
        ));
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let dot = render_dot(&dfg, Some(&stats), &NoColoring, &RenderOptions::default());
        assert!(dot.contains("Load:1.00"), "{dot}");
        assert!(!dot.contains("DR:"), "{dot}");
    }

    #[test]
    fn ranks_line_appears_when_enabled() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let opts = RenderOptions { show_ranks: true, ..Default::default() };
        let dot = render_dot(&dfg, Some(&stats), &NoColoring, &opts);
        assert!(dot.contains("Ranks: "), "{dot}");
    }

    #[test]
    fn partition_colored_edges_render_with_color() {
        let log = mini_log();
        let (ga, gb) = log.partition_by_cid("a");
        let m = CallTopDirs::new(2);
        let full = MappedLog::new(&log, &m);
        let dfg = crate::dfg::Dfg::from_mapped(&full);
        let dfg_a = crate::dfg::Dfg::from_mapped(&MappedLog::new(&ga, &m));
        let dfg_b = crate::dfg::Dfg::from_mapped(&MappedLog::new(&gb, &m));
        let styler = PartitionColoring::new(&dfg_a, &dfg_b);
        let dot = render_dot(&dfg, None, &styler, &RenderOptions::default());
        // read:/etc/passwd only exists in b: red node.
        assert!(dot.contains(&format!("fillcolor=\"{}\"", crate::color::Rgb::RED.to_hex())), "{dot}");
        // No green-only nodes here (a is a subset of b's structure), but
        // the a-only edge write:/dev/pts -> ■ vs b's write -> read.
        assert!(dot.contains(&format!("color=\"{}\"", crate::color::Rgb::GREEN.to_hex())) ||
                dot.contains(&format!("color=\"{}\"", crate::color::Rgb::RED.to_hex())), "{dot}");
    }

    #[test]
    fn deterministic_output() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let a = render_dot_plain(&dfg);
        let b = render_dot_plain(&dfg);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_lists_activities_and_edges() {
        let log = mini_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = crate::dfg::Dfg::from_mapped(&mapped);
        let stats = crate::stats::IoStatistics::compute(&mapped);
        let summary = render_summary(&dfg, Some(&stats));
        assert!(summary.contains("read /usr/lib") || summary.contains("read:/usr/lib"), "{summary}");
        assert!(summary.contains("edges ("), "{summary}");
        assert!(summary.contains("● -> "), "{summary}");
        assert!(summary.contains(" -> ■"), "{summary}");
    }

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
    }
}
