//! The activity log `L_f(C) ∈ B(A_f*)` — a multiset of activity traces
//! (Sec. IV "Activity-log").
//!
//! Cases whose traces are identical collapse into one entry with a
//! multiplicity, exactly like the paper's example where all three `ls`
//! cases map to a single trace with multiplicity 3.

use std::collections::HashMap;

use crate::activity::ActivityId;
use crate::mapped::MappedLog;

/// One distinct trace with its multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The activity sequence `⟨a_1, …, a_n⟩` (without start/end markers;
    /// those are implicit in DFG construction).
    pub activities: Vec<ActivityId>,
    /// How many cases produced this exact trace.
    pub multiplicity: usize,
    /// Indices (into `log().cases()`) of those cases.
    pub cases: Vec<usize>,
}

/// A multiset of activity traces.
#[derive(Debug, Clone, Default)]
pub struct ActivityLog {
    entries: Vec<TraceEntry>,
}

impl ActivityLog {
    /// Builds the multiset from a mapped log. Cases with *no* mapped
    /// events contribute nothing (the paper filters the event log before
    /// mapping, so empty traces never arise there either).
    pub fn from_mapped(mapped: &MappedLog<'_>) -> Self {
        let mut index: HashMap<Vec<ActivityId>, usize> = HashMap::new();
        let mut entries: Vec<TraceEntry> = Vec::new();
        for case_idx in 0..mapped.log().case_count() {
            let trace = mapped.trace_of(case_idx);
            if trace.is_empty() {
                continue;
            }
            match index.get(&trace) {
                Some(&slot) => {
                    entries[slot].multiplicity += 1;
                    entries[slot].cases.push(case_idx);
                }
                None => {
                    index.insert(trace.clone(), entries.len());
                    entries.push(TraceEntry {
                        activities: trace,
                        multiplicity: 1,
                        cases: vec![case_idx],
                    });
                }
            }
        }
        ActivityLog { entries }
    }

    /// Distinct traces, in first-appearance order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of distinct traces.
    pub fn distinct_traces(&self) -> usize {
        self.entries.len()
    }

    /// Total number of traces including multiplicities (= contributing
    /// cases).
    pub fn total_traces(&self) -> usize {
        self.entries.iter().map(|e| e.multiplicity).sum()
    }

    /// Formats the multiset like the paper's prose
    /// (`{⟨a, a, b⟩², ⟨a, c⟩}`), resolving names through `mapped`.
    pub fn display(&self, mapped: &MappedLog<'_>) -> String {
        let mut out = String::from("{");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('⟨');
            for (j, a) in entry.activities.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(mapped.table().name(*a));
            }
            out.push('⟩');
            if entry.multiplicity > 1 {
                out.push_str(&format!("^{}", entry.multiplicity));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    /// Three identical `ls`-like cases plus one different case — the
    /// shape of the paper's L(Ca) ∪ L(Cb) example.
    fn sample_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for rid in 0..3 {
            let meta = CaseMeta {
                cid: i.intern("a"),
                host: i.intern("h"),
                rid,
            };
            let events = vec![
                Event::new(
                    Pid(rid),
                    Syscall::Read,
                    Micros(0),
                    Micros(1),
                    i.intern("/usr/lib/x.so"),
                ),
                Event::new(
                    Pid(rid),
                    Syscall::Write,
                    Micros(10),
                    Micros(1),
                    i.intern("/dev/pts/7"),
                ),
            ];
            log.push_case(Case::from_events(meta, events));
        }
        let meta = CaseMeta {
            cid: i.intern("b"),
            host: i.intern("h"),
            rid: 9,
        };
        let events = vec![
            Event::new(
                Pid(9),
                Syscall::Read,
                Micros(0),
                Micros(1),
                i.intern("/usr/lib/x.so"),
            ),
            Event::new(
                Pid(9),
                Syscall::Read,
                Micros(5),
                Micros(1),
                i.intern("/etc/passwd"),
            ),
            Event::new(
                Pid(9),
                Syscall::Write,
                Micros(10),
                Micros(1),
                i.intern("/dev/pts/7"),
            ),
        ];
        log.push_case(Case::from_events(meta, events));
        log
    }

    #[test]
    fn identical_traces_collapse_with_multiplicity() {
        let log = sample_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let alog = ActivityLog::from_mapped(&mapped);
        assert_eq!(alog.distinct_traces(), 2);
        assert_eq!(alog.total_traces(), 4);
        assert_eq!(alog.entries()[0].multiplicity, 3);
        assert_eq!(alog.entries()[0].cases, vec![0, 1, 2]);
        assert_eq!(alog.entries()[1].multiplicity, 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let log = sample_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let alog = ActivityLog::from_mapped(&mapped);
        let s = alog.display(&mapped);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("⟨read:/usr/lib, write:/dev/pts⟩^3"), "{s}");
        assert!(
            s.contains("⟨read:/usr/lib, read:/etc/passwd, write:/dev/pts⟩"),
            "{s}"
        );
    }

    #[test]
    fn unmapped_cases_contribute_nothing() {
        let log = sample_log();
        let m = crate::mapping::PathFilter::new("/etc", CallTopDirs::new(2));
        let mapped = MappedLog::new(&log, &m);
        let alog = ActivityLog::from_mapped(&mapped);
        // Only the `b` case touches /etc.
        assert_eq!(alog.total_traces(), 1);
        assert_eq!(alog.entries()[0].activities.len(), 1);
    }

    #[test]
    fn empty_mapped_log() {
        let log = EventLog::with_new_interner();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let alog = ActivityLog::from_mapped(&mapped);
        assert_eq!(alog.distinct_traces(), 0);
        assert_eq!(alog.total_traces(), 0);
    }
}
