//! Interval concurrency analysis (Eq. 14–16).
//!
//! The paper's `get_max_concurrency` "first sorts `t_f` according to
//! increasing start timestamps, iterates through the sorted `t_f`, and
//! determines the maximum number of consecutive events that could be
//! identified such that the end time of the first event is greater than
//! the start time of the last event."
//!
//! That windowed criterion ([`max_concurrency_windowed`]) is an upper
//! bound on the *pointwise* concurrency — the largest number of
//! intervals that overlap a single instant ([`max_concurrency_exact`],
//! the classic sweep-line) — because a window's middle intervals need not
//! overlap each other. Both are provided; the statistics module uses the
//! paper's windowed definition for fidelity and the exact sweep is
//! exposed for comparison (the `concurrency` bench quantifies the gap).

use st_model::Micros;

/// The paper's windowed algorithm (Eq. 16): max length of a
/// consecutive-run window `[i..j]` in start-sorted order with
/// `end_i > start_j`.
pub fn max_concurrency_windowed(intervals: &[(Micros, Micros)]) -> u32 {
    if intervals.is_empty() {
        return 0;
    }
    let mut sorted = intervals.to_vec();
    // Sort by (start, end): the paper only specifies increasing start
    // timestamps, but breaking start ties by end makes the result
    // independent of input order (equal-start intervals with different
    // ends would otherwise shift window widths with their relative
    // positions). Any tie order keeps the upper-bound property.
    sorted.sort_by_key(|&(s, e)| (s, e));
    let mut best = 1u32;
    for i in 0..sorted.len() {
        let end_i = sorted[i].1;
        // Widest window starting at i: last j with start_j < end_i.
        // Starts are sorted, so binary search the boundary.
        let j = sorted.partition_point(|(s, _)| *s < end_i);
        // Window is [i, j); zero-length intervals can make j <= i.
        best = best.max(j.saturating_sub(i) as u32);
    }
    best
}

/// Exact pointwise maximum concurrency via sweep-line over start/end
/// boundaries. Half-open semantics: an interval ending exactly when
/// another starts does not overlap it.
pub fn max_concurrency_exact(intervals: &[(Micros, Micros)]) -> u32 {
    if intervals.is_empty() {
        return 0;
    }
    let mut boundaries: Vec<(Micros, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(start, end) in intervals {
        boundaries.push((start, 1));
        boundaries.push((end.max(start), -1));
    }
    // Process ends before starts at equal timestamps (half-open).
    boundaries.sort_by_key(|&(t, delta)| (t, delta));
    let mut current = 0i32;
    let mut best = 0i32;
    for (_, delta) in boundaries {
        current += delta;
        best = best.max(current);
    }
    best.max(0) as u32
}

/// Brute-force reference: for every interval start, count how many
/// intervals cover it. Only for testing/verification (O(n²)).
pub fn max_concurrency_brute(intervals: &[(Micros, Micros)]) -> u32 {
    intervals
        .iter()
        .map(|&(t, _)| {
            intervals
                .iter()
                .filter(|&&(s, e)| s <= t && t < e.max(s + Micros(1)))
                .count() as u32
        })
        .max()
        .unwrap_or(0)
}

/// The concurrency profile: `(time, active-count)` steps, for timeline
/// visualizations.
pub fn concurrency_profile(intervals: &[(Micros, Micros)]) -> Vec<(Micros, u32)> {
    let mut boundaries: Vec<(Micros, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(start, end) in intervals {
        boundaries.push((start, 1));
        boundaries.push((end.max(start), -1));
    }
    boundaries.sort_by_key(|&(t, delta)| (t, delta));
    let mut profile = Vec::new();
    let mut current = 0i32;
    for (t, delta) in boundaries {
        current += delta;
        match profile.last_mut() {
            Some((last_t, count)) if *last_t == t => *count = current.max(0) as u32,
            _ => profile.push((t, current.max(0) as u32)),
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(pairs: &[(u64, u64)]) -> Vec<(Micros, Micros)> {
        pairs.iter().map(|&(s, e)| (Micros(s), Micros(e))).collect()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(max_concurrency_windowed(&[]), 0);
        assert_eq!(max_concurrency_exact(&[]), 0);
        let one = iv(&[(0, 10)]);
        assert_eq!(max_concurrency_windowed(&one), 1);
        assert_eq!(max_concurrency_exact(&one), 1);
    }

    #[test]
    fn disjoint_intervals_have_concurrency_one() {
        let ivs = iv(&[(0, 5), (10, 15), (20, 25)]);
        assert_eq!(max_concurrency_windowed(&ivs), 1);
        assert_eq!(max_concurrency_exact(&ivs), 1);
    }

    #[test]
    fn fully_overlapping() {
        let ivs = iv(&[(0, 100), (1, 99), (2, 98)]);
        assert_eq!(max_concurrency_windowed(&ivs), 3);
        assert_eq!(max_concurrency_exact(&ivs), 3);
    }

    #[test]
    fn fig5_shape_two_of_three_overlap() {
        // Like the paper's Fig. 5: three ranks; at most two read
        // /usr/lib at the same time.
        let ivs = iv(&[(0, 10), (8, 20), (25, 30)]);
        assert_eq!(max_concurrency_windowed(&ivs), 2);
        assert_eq!(max_concurrency_exact(&ivs), 2);
    }

    #[test]
    fn touching_endpoints_do_not_overlap() {
        let ivs = iv(&[(0, 10), (10, 20)]);
        assert_eq!(max_concurrency_exact(&ivs), 1);
        // The windowed criterion uses strict `start < end` too.
        assert_eq!(max_concurrency_windowed(&ivs), 1);
    }

    #[test]
    fn windowed_can_exceed_exact() {
        // (0,10) spans (1,2) and (5,6), but those two never overlap each
        // other: exact = 2, windowed = 3.
        let ivs = iv(&[(0, 10), (1, 2), (5, 6)]);
        assert_eq!(max_concurrency_exact(&ivs), 2);
        assert_eq!(max_concurrency_windowed(&ivs), 3);
    }

    #[test]
    fn windowed_upper_bounds_exact_on_many_shapes() {
        let shapes: Vec<Vec<(Micros, Micros)>> = vec![
            iv(&[(0, 1), (0, 1), (0, 1), (0, 1)]),
            iv(&[(0, 4), (1, 5), (2, 6), (3, 7)]),
            iv(&[(0, 100), (10, 20), (30, 40), (50, 60), (99, 100)]),
            iv(&[(5, 5), (5, 5)]), // zero-length
        ];
        for ivs in shapes {
            let w = max_concurrency_windowed(&ivs);
            let e = max_concurrency_exact(&ivs);
            assert!(w >= e, "windowed {w} < exact {e} for {ivs:?}");
            assert!(w as usize <= ivs.len());
        }
    }

    #[test]
    fn exact_matches_brute_force() {
        let ivs = iv(&[(0, 10), (2, 3), (2, 8), (9, 12), (11, 15), (14, 14)]);
        assert_eq!(max_concurrency_exact(&ivs), max_concurrency_brute(&ivs));
    }

    #[test]
    fn profile_steps() {
        let ivs = iv(&[(0, 10), (5, 15)]);
        let profile = concurrency_profile(&ivs);
        assert_eq!(
            profile,
            vec![
                (Micros(0), 1),
                (Micros(5), 2),
                (Micros(10), 1),
                (Micros(15), 0)
            ]
        );
    }
}
