//! Cross-run DFG comparison.
//!
//! The paper's inspection loop does not stop at building one DFG: Sec. V
//! contrasts IOR Single-Shared-File against File-Per-Process and MPI-IO
//! against POSIX by looking at how the *directly-follows structure and
//! edge frequencies shift between two runs*. This module makes that
//! comparison a first-class operation: [`diff`] aligns two [`Dfg`]s **by
//! activity name** (dense [`crate::ActivityId`]s are interner-local and
//! mean nothing across runs), normalizes edge counts to relative
//! frequencies so runs of different lengths stay comparable, and
//! produces a structural [`DfgDiff`]:
//!
//! * nodes and edges partitioned into *A-only* (removed), *B-only*
//!   (added) and *common*;
//! * per-edge absolute counts and relative frequencies on both sides,
//!   with absolute and relative deltas;
//! * summary metrics, including the total-variation distance between
//!   the two edge-frequency distributions.
//!
//! The result is deterministic: nodes and edges are ordered start →
//! activities (lexicographic) → end, the same order rendering uses.
//!
//! ```
//! use st_core::prelude::*;
//! use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
//! use std::sync::Arc;
//!
//! // Two tiny runs: run A reads /data twice, run B reads /data then
//! // writes /out.
//! fn run(paths: &[(&str, Syscall)]) -> EventLog {
//!     let mut log = EventLog::with_new_interner();
//!     let i = Arc::clone(log.interner());
//!     let meta = CaseMeta { cid: i.intern("c"), host: i.intern("h"), rid: 0 };
//!     let events = paths.iter().enumerate().map(|(k, (p, call))| {
//!         Event::new(Pid(1), *call, Micros(k as u64), Micros(1), i.intern(p))
//!     }).collect();
//!     log.push_case(Case::from_events(meta, events));
//!     log
//! }
//! let a = run(&[("/data/f", Syscall::Read), ("/data/f", Syscall::Read)]);
//! let b = run(&[("/data/f", Syscall::Read), ("/out/f", Syscall::Write)]);
//!
//! let mapping = CallTopDirs::new(2);
//! let dfg_a = Dfg::from_mapped(&MappedLog::new(&a, &mapping));
//! let dfg_b = Dfg::from_mapped(&MappedLog::new(&b, &mapping));
//!
//! let d = st_core::diff::diff(&dfg_a, &dfg_b);
//! assert!(!d.is_empty());
//! // write:/out/f only appears in run B.
//! assert_eq!(d.nodes_added().count(), 1);
//! assert_eq!(d.nodes_added().next().unwrap().name, "write:/out/f");
//! // Comparing a graph against itself is empty.
//! assert!(st_core::diff::diff(&dfg_a, &dfg_a).is_empty());
//! ```

use std::collections::BTreeMap;

use crate::dfg::Dfg;

/// Which side(s) of a comparison an aligned node or edge occurs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Presence {
    /// Only in the first graph (`A`) — *removed* going A → B.
    AOnly,
    /// Only in the second graph (`B`) — *added* going A → B.
    BOnly,
    /// In both graphs.
    Both,
}

/// One aligned node of a [`DfgDiff`].
#[derive(Clone, PartialEq, Debug)]
pub struct NodeDiff {
    /// Activity name, or `"●"` / `"■"` for the start/end markers.
    pub name: String,
    /// Side(s) the node occurs on.
    pub presence: Presence,
    /// Occurrences in `A` (events for activities, traces for markers).
    pub occ_a: u64,
    /// Occurrences in `B`.
    pub occ_b: u64,
}

impl NodeDiff {
    /// Signed occurrence delta `B − A`.
    pub fn delta_occ(&self) -> i64 {
        self.occ_b as i64 - self.occ_a as i64
    }
}

/// One aligned edge of a [`DfgDiff`].
#[derive(Clone, PartialEq, Debug)]
pub struct EdgeDiff {
    /// Source node name (`"●"` for the start marker).
    pub from: String,
    /// Target node name (`"■"` for the end marker).
    pub to: String,
    /// Side(s) the edge occurs on.
    pub presence: Presence,
    /// Observation count in `A`.
    pub count_a: u64,
    /// Observation count in `B`.
    pub count_b: u64,
    /// Relative frequency in `A`: `count_a / Σ counts(A)` (0 when `A`
    /// has no edges).
    pub freq_a: f64,
    /// Relative frequency in `B`.
    pub freq_b: f64,
}

impl EdgeDiff {
    /// Signed count delta `B − A`.
    pub fn delta_count(&self) -> i64 {
        self.count_b as i64 - self.count_a as i64
    }

    /// Signed relative-frequency delta `B − A`, in `[-1, 1]`.
    pub fn delta_freq(&self) -> f64 {
        self.freq_b - self.freq_a
    }

    /// A common edge whose count or relative frequency shifted.
    ///
    /// Counts may match while frequencies differ (the other edges
    /// changed the totals) and vice versa; either shift counts as a
    /// change.
    pub fn is_changed(&self) -> bool {
        self.presence == Presence::Both
            && (self.count_a != self.count_b || self.delta_freq().abs() > FREQ_EPSILON)
    }
}

/// Frequency shifts below this are numeric noise, not change.
const FREQ_EPSILON: f64 = 1e-12;

/// Aggregate counts of a [`DfgDiff`], for reports and quick checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DiffSummary {
    /// Nodes only in `A`.
    pub nodes_removed: usize,
    /// Nodes only in `B`.
    pub nodes_added: usize,
    /// Nodes in both.
    pub nodes_common: usize,
    /// Edges only in `A`.
    pub edges_removed: usize,
    /// Edges only in `B`.
    pub edges_added: usize,
    /// Common edges whose count or frequency shifted.
    pub edges_changed: usize,
    /// Common edges with identical counts and frequencies.
    pub edges_unchanged: usize,
}

/// The structural comparison of two DFGs, produced by [`diff`].
///
/// Nodes and edges are aligned by name and held in deterministic order:
/// `●` first, activities lexicographically, `■` last (edges by that
/// order on `(from, to)`).
#[derive(Clone, Debug)]
pub struct DfgDiff {
    nodes: Vec<NodeDiff>,
    edges: Vec<EdgeDiff>,
    case_count_a: u64,
    case_count_b: u64,
    total_edges_a: u64,
    total_edges_b: u64,
    tvd: f64,
}

impl DfgDiff {
    /// All aligned nodes, in deterministic order.
    pub fn nodes(&self) -> &[NodeDiff] {
        &self.nodes
    }

    /// All aligned edges, in deterministic order.
    pub fn edges(&self) -> &[EdgeDiff] {
        &self.edges
    }

    /// Nodes present only in `B` (added going A → B).
    pub fn nodes_added(&self) -> impl Iterator<Item = &NodeDiff> {
        self.nodes.iter().filter(|n| n.presence == Presence::BOnly)
    }

    /// Nodes present only in `A` (removed going A → B).
    pub fn nodes_removed(&self) -> impl Iterator<Item = &NodeDiff> {
        self.nodes.iter().filter(|n| n.presence == Presence::AOnly)
    }

    /// Edges present only in `B`.
    pub fn edges_added(&self) -> impl Iterator<Item = &EdgeDiff> {
        self.edges.iter().filter(|e| e.presence == Presence::BOnly)
    }

    /// Edges present only in `A`.
    pub fn edges_removed(&self) -> impl Iterator<Item = &EdgeDiff> {
        self.edges.iter().filter(|e| e.presence == Presence::AOnly)
    }

    /// Common edges whose count or relative frequency shifted.
    pub fn edges_changed(&self) -> impl Iterator<Item = &EdgeDiff> {
        self.edges.iter().filter(|e| e.is_changed())
    }

    /// Traces contributing to `A`.
    pub fn case_count_a(&self) -> u64 {
        self.case_count_a
    }

    /// Traces contributing to `B`.
    pub fn case_count_b(&self) -> u64 {
        self.case_count_b
    }

    /// Total edge observations in `A` (the frequency denominator).
    pub fn total_edges_a(&self) -> u64 {
        self.total_edges_a
    }

    /// Total edge observations in `B`.
    pub fn total_edges_b(&self) -> u64 {
        self.total_edges_b
    }

    /// Total-variation distance `½ Σ |p_A(e) − p_B(e)|` between the two
    /// edge-frequency distributions, in `[0, 1]`.
    ///
    /// 0 means identical distributions (identical graphs score 0 even if
    /// one run is a scaled repeat of the other); 1 means completely
    /// disjoint structure. When exactly one side has no edges at all the
    /// distance is defined as 1, and as 0 when both are empty.
    pub fn total_variation(&self) -> f64 {
        self.tvd
    }

    /// No structural difference at all: every node and edge is common
    /// and every edge keeps its count (hence its frequency). `diff(G,
    /// G)` is empty for every `G`.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.presence == Presence::Both)
            && self
                .edges
                .iter()
                .all(|e| e.presence == Presence::Both && !e.is_changed())
    }

    /// Aggregate counts.
    pub fn summary(&self) -> DiffSummary {
        let mut s = DiffSummary::default();
        for n in &self.nodes {
            match n.presence {
                Presence::AOnly => s.nodes_removed += 1,
                Presence::BOnly => s.nodes_added += 1,
                Presence::Both => s.nodes_common += 1,
            }
        }
        for e in &self.edges {
            match e.presence {
                Presence::AOnly => s.edges_removed += 1,
                Presence::BOnly => s.edges_added += 1,
                Presence::Both if e.is_changed() => s.edges_changed += 1,
                Presence::Both => s.edges_unchanged += 1,
            }
        }
        s
    }
}

/// Sort rank putting `●` before activity names before `■`.
fn name_rank(name: &str) -> u8 {
    match name {
        "●" => 0,
        "■" => 2,
        _ => 1,
    }
}

/// Deterministic ordering key for aligned names.
type NameKey = (u8, String);

fn name_key(name: &str) -> NameKey {
    (name_rank(name), name.to_string())
}

/// Compares two DFGs, aligning nodes and edges **by activity name**.
///
/// Dense activity ids are assigned per [`crate::ActivityTable`] in
/// first-appearance order and therefore differ between independently
/// built graphs; names are the only stable identity across runs. Edge
/// counts are additionally normalized to relative frequencies
/// (`count / Σ counts` per graph) so that a run with twice the events
/// but the same *behavior* diffs as unchanged in distribution (the
/// count deltas still show the scale shift).
///
/// The comparison is symmetric up to direction: `diff(b, a)` has
/// added/removed mirrored and all deltas negated, with the same
/// total-variation distance.
pub fn diff(a: &Dfg, b: &Dfg) -> DfgDiff {
    // Align nodes.
    let mut nodes: BTreeMap<NameKey, (u64, u64, bool, bool)> = BTreeMap::new();
    for node in a.nodes() {
        let name = a.node_name(node);
        let slot = nodes.entry(name_key(name)).or_default();
        slot.0 = a.occurrences(node);
        slot.2 = true;
    }
    for node in b.nodes() {
        let name = b.node_name(node);
        let slot = nodes.entry(name_key(name)).or_default();
        slot.1 = b.occurrences(node);
        slot.3 = true;
    }
    let nodes: Vec<NodeDiff> = nodes
        .into_iter()
        .map(|((_, name), (occ_a, occ_b, in_a, in_b))| NodeDiff {
            name,
            presence: presence(in_a, in_b),
            occ_a,
            occ_b,
        })
        .collect();

    // Align edges.
    let total_a = a.total_edge_observations();
    let total_b = b.total_edge_observations();
    let mut edges: BTreeMap<(NameKey, NameKey), (u64, u64, bool, bool)> = BTreeMap::new();
    for (from, to, count) in a.edges() {
        let key = (name_key(a.node_name(from)), name_key(a.node_name(to)));
        let slot = edges.entry(key).or_default();
        slot.0 = count;
        slot.2 = true;
    }
    for (from, to, count) in b.edges() {
        let key = (name_key(b.node_name(from)), name_key(b.node_name(to)));
        let slot = edges.entry(key).or_default();
        slot.1 = count;
        slot.3 = true;
    }
    let freq = |count: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        }
    };
    let edges: Vec<EdgeDiff> = edges
        .into_iter()
        .map(
            |(((_, from), (_, to)), (count_a, count_b, in_a, in_b))| EdgeDiff {
                from,
                to,
                presence: presence(in_a, in_b),
                count_a,
                count_b,
                freq_a: freq(count_a, total_a),
                freq_b: freq(count_b, total_b),
            },
        )
        .collect();

    let tvd = match (total_a, total_b) {
        (0, 0) => 0.0,
        (0, _) | (_, 0) => 1.0,
        _ => 0.5 * edges.iter().map(|e| e.delta_freq().abs()).sum::<f64>(),
    };

    DfgDiff {
        nodes,
        edges,
        case_count_a: a.case_count(),
        case_count_b: b.case_count(),
        total_edges_a: total_a,
        total_edges_b: total_b,
        tvd,
    }
}

fn presence(in_a: bool, in_b: bool) -> Presence {
    match (in_a, in_b) {
        (true, false) => Presence::AOnly,
        (false, true) => Presence::BOnly,
        (true, true) => Presence::Both,
        (false, false) => unreachable!("aligned entry seen on neither side"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedLog;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    /// One single-case log touching the given paths with `read`.
    fn log_of(paths: &[&str]) -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("c"),
            host: i.intern("h"),
            rid: 0,
        };
        let events = paths
            .iter()
            .enumerate()
            .map(|(k, p)| {
                Event::new(
                    Pid(1),
                    Syscall::Read,
                    Micros(k as u64),
                    Micros(1),
                    i.intern(p),
                )
            })
            .collect();
        log.push_case(Case::from_events(meta, events));
        log
    }

    fn dfg_of(paths: &[&str]) -> Dfg {
        let log = log_of(paths);
        Dfg::from_mapped(&MappedLog::new(&log, &CallTopDirs::new(2)))
    }

    #[test]
    fn self_diff_is_empty() {
        let g = dfg_of(&["/a/f", "/a/f", "/b/f"]);
        let d = diff(&g, &g);
        assert!(d.is_empty());
        assert_eq!(d.total_variation(), 0.0);
        assert_eq!(d.summary().edges_changed, 0);
        assert_eq!(d.summary().nodes_added, 0);
        assert_eq!(d.summary().nodes_removed, 0);
        // Everything is still listed, as common.
        assert_eq!(d.summary().nodes_common, d.nodes().len());
    }

    #[test]
    fn disjoint_graphs_have_tvd_one() {
        let a = dfg_of(&["/a/f"]);
        let b = dfg_of(&["/b/f"]);
        let d = diff(&a, &b);
        // ●→x and x→■ disjoint... but ● and ■ themselves are common
        // nodes while *all edges* differ.
        assert!(
            (d.total_variation() - 1.0).abs() < 1e-12,
            "{}",
            d.total_variation()
        );
        assert_eq!(d.nodes_added().count(), 1);
        assert_eq!(d.nodes_removed().count(), 1);
        assert_eq!(d.edges_added().count(), 2);
        assert_eq!(d.edges_removed().count(), 2);
    }

    #[test]
    fn scaled_repeat_changes_counts_not_distribution() {
        // B is A's trace twice: same structure, same frequencies,
        // doubled counts.
        let a_log = log_of(&["/a/f", "/b/f"]);
        let mut b_log = log_of(&["/a/f", "/b/f"]);
        {
            let i = Arc::clone(b_log.interner());
            let meta = CaseMeta {
                cid: i.intern("c"),
                host: i.intern("h"),
                rid: 1,
            };
            let events = ["/a/f", "/b/f"]
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    Event::new(
                        Pid(2),
                        Syscall::Read,
                        Micros(k as u64),
                        Micros(1),
                        i.intern(p),
                    )
                })
                .collect();
            b_log.push_case(Case::from_events(meta, events));
        }
        let m = CallTopDirs::new(2);
        let a = Dfg::from_mapped(&MappedLog::new(&a_log, &m));
        let b = Dfg::from_mapped(&MappedLog::new(&b_log, &m));
        let d = diff(&a, &b);
        assert_eq!(d.total_variation(), 0.0);
        assert!(!d.is_empty(), "count shift is still a change");
        for e in d.edges() {
            assert_eq!(e.presence, Presence::Both);
            assert_eq!(e.count_b, 2 * e.count_a);
            assert!(e.delta_freq().abs() < 1e-12);
            assert!(e.is_changed());
        }
    }

    #[test]
    fn swap_mirrors_added_and_removed() {
        let a = dfg_of(&["/a/f", "/b/f"]);
        let b = dfg_of(&["/a/f", "/c/f", "/c/f"]);
        let ab = diff(&a, &b);
        let ba = diff(&b, &a);
        let names = |it: Vec<&NodeDiff>| it.iter().map(|n| n.name.clone()).collect::<Vec<_>>();
        assert_eq!(
            names(ab.nodes_added().collect()),
            names(ba.nodes_removed().collect())
        );
        assert_eq!(
            names(ab.nodes_removed().collect()),
            names(ba.nodes_added().collect())
        );
        assert_eq!(ab.total_variation(), ba.total_variation());
        assert_eq!(ab.edges_added().count(), ba.edges_removed().count());
        // Deltas negate.
        for (e_ab, e_ba) in ab.edges().iter().zip(ba.edges()) {
            assert_eq!(e_ab.from, e_ba.from);
            assert_eq!(e_ab.to, e_ba.to);
            assert_eq!(e_ab.delta_count(), -e_ba.delta_count());
            assert!((e_ab.delta_freq() + e_ba.delta_freq()).abs() < 1e-12);
        }
    }

    #[test]
    fn ordering_is_start_names_end() {
        let a = dfg_of(&["/b/f", "/a/f"]);
        let b = dfg_of(&["/c/f"]);
        let d = diff(&a, &b);
        let names: Vec<&str> = d.nodes().iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["●", "read:/a/f", "read:/b/f", "read:/c/f", "■"]);
        assert_eq!(d.edges().first().unwrap().from, "●");
        assert_eq!(d.edges().last().unwrap().to, "■");
    }

    #[test]
    fn empty_vs_nonempty_is_maximal() {
        let empty_log = EventLog::with_new_interner();
        let m = CallTopDirs::new(2);
        let empty = Dfg::from_mapped(&MappedLog::new(&empty_log, &m));
        let g = dfg_of(&["/a/f"]);
        let d = diff(&empty, &g);
        assert_eq!(d.total_variation(), 1.0);
        assert_eq!(d.nodes_removed().count(), 0);
        assert!(d.nodes_added().count() >= 1);
        let both_empty = diff(&empty, &empty);
        assert!(both_empty.is_empty());
        assert_eq!(both_empty.total_variation(), 0.0);
    }
}
