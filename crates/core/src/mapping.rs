//! Mappings `f : E ⇀ A_f` — the partial functions that turn events into
//! activities (Sec. IV "Mapping and Activity").
//!
//! A mapping is *partial*: returning `false` from
//! [`Mapping::write_activity`] leaves the event unmapped, which is how
//! the paper restricts synthesis to a section of the event log (the
//! `/usr/lib` query of Fig. 4). Mappings write the activity name into a
//! caller-provided buffer to avoid per-event allocation in the hot loop.
//!
//! Provided mappings:
//!
//! | type | paper counterpart |
//! |------|-------------------|
//! | [`CallTopDirs`] | `f̂` (Eq. 4): call + path truncated to top-k directory levels |
//! | [`SiteMap`] | `f̄` (Sec. V): call + site variable (`$SCRATCH`, `$HOME`, …) |
//! | [`PathFilter`] | `f₁` (Fig. 4): restrict any mapping to paths containing a substring |
//! | [`PathSuffix`] | Fig. 4 node names: call + path remainder after the matched prefix |
//! | [`CallOnly`] | coarsest query: one activity per syscall |
//! | [`FnMapping`] | arbitrary user closure (Fig. 6 step 2a) |

use st_model::{CaseMeta, Event, InternerSnapshot};

use std::fmt::Write as _;

/// Context handed to mappings: a lock-free interner view for resolving
/// path symbols.
pub struct MapCtx<'a> {
    /// Snapshot of the event log's interner.
    pub snapshot: &'a InternerSnapshot,
}

impl<'a> MapCtx<'a> {
    /// Resolves an event's file path.
    #[inline]
    pub fn path(&self, event: &Event) -> &str {
        self.snapshot.try_resolve(event.path).unwrap_or("")
    }

    /// Resolves an event's syscall name (named calls resolve statically;
    /// `Other` calls resolve through the snapshot).
    #[inline]
    pub fn call_name(&self, event: &Event) -> &str {
        match event.call {
            st_model::Syscall::Other(sym) => self.snapshot.try_resolve(sym).unwrap_or("?"),
            named => named.static_name().unwrap_or("?"),
        }
    }
}

/// A partial function from events to activity names.
///
/// Implementations must be deterministic and `Sync` (the parallel mapper
/// shares one instance across worker threads).
pub trait Mapping: Sync {
    /// Writes the activity name for `event` into `out` and returns
    /// `true`, or returns `false` to leave the event unmapped. `out`
    /// arrives cleared.
    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool;

    /// Convenience: maps one event to an owned name.
    fn activity_name(&self, ctx: &MapCtx<'_>, meta: &CaseMeta, event: &Event) -> Option<String> {
        let mut buf = String::new();
        if self.write_activity(ctx, meta, event, &mut buf) {
            Some(buf)
        } else {
            None
        }
    }

    /// Whether this mapping's result (including the unmapped case) is a
    /// pure function of the event's `(call, path)` symbols — independent
    /// of the case meta and of every other event attribute.
    ///
    /// Returning `true` lets [`MappedLog`](crate::MappedLog) memoize
    /// activity resolution per distinct `(call, path)` pair, skipping
    /// path resolution, name formatting and table hashing for repeated
    /// symbols — the common case, since traces touch a handful of files
    /// millions of times. Every built-in mapping qualifies (they read
    /// only the call and the path); [`FnMapping`] conservatively keeps
    /// the default `false` because its closure may read anything.
    fn keyed_by_call_path(&self) -> bool {
        false
    }
}

/// Truncates `path` to at most its top `levels` components, the
/// truncation of Eq. 4 / Fig. 6 step 2a (`/usr/lib/x86_64-linux-gnu/…` →
/// `/usr/lib` for `levels = 2`).
pub fn truncate_path(path: &str, levels: usize) -> &str {
    if !path.starts_with('/') {
        return path;
    }
    let mut seen = 0usize;
    for (idx, byte) in path.bytes().enumerate().skip(1) {
        if byte == b'/' {
            seen += 1;
            if seen == levels {
                return &path[..idx];
            }
        }
    }
    path
}

/// The paper's mapping `f̂` (Eq. 4): `"<call>:<path truncated to top-k
/// directory levels>"`.
#[derive(Debug, Clone)]
pub struct CallTopDirs {
    levels: usize,
}

impl CallTopDirs {
    /// Creates the mapping; the paper uses `levels = 2`.
    pub fn new(levels: usize) -> Self {
        CallTopDirs { levels }
    }
}

impl Default for CallTopDirs {
    fn default() -> Self {
        Self::new(2)
    }
}

impl Mapping for CallTopDirs {
    fn keyed_by_call_path(&self) -> bool {
        true
    }

    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        _meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        let path = ctx.path(event);
        if path.is_empty() {
            return false;
        }
        let _ = write!(
            out,
            "{}:{}",
            ctx.call_name(event),
            truncate_path(path, self.levels)
        );
        true
    }
}

/// One activity per syscall name, ignoring paths.
#[derive(Debug, Clone, Default)]
pub struct CallOnly;

impl Mapping for CallOnly {
    fn keyed_by_call_path(&self) -> bool {
        true
    }

    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        _meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        out.push_str(ctx.call_name(event));
        true
    }
}

/// Restricts an inner mapping to events whose path contains a substring
/// — the query-narrowing of Fig. 4 (`f₁` maps an event only if the file
/// path contains `/usr/lib`).
pub struct PathFilter<M> {
    needle: String,
    inner: M,
}

impl<M: Mapping> PathFilter<M> {
    /// Wraps `inner`, mapping only events whose path contains `needle`.
    pub fn new(needle: impl Into<String>, inner: M) -> Self {
        PathFilter {
            needle: needle.into(),
            inner,
        }
    }
}

impl<M: Mapping> Mapping for PathFilter<M> {
    fn keyed_by_call_path(&self) -> bool {
        self.inner.keyed_by_call_path()
    }

    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        if !ctx.path(event).contains(self.needle.as_str()) {
            return false;
        }
        self.inner.write_activity(ctx, meta, event, out)
    }
}

/// `"<call>:<path remainder after a prefix>"` — the node naming of
/// Fig. 4, where `/usr/lib/x86_64-linux-gnu/libselinux.so.1` renders as
/// `x86_64-linux-gnu/libselinux.so.1` once the synthesis is restricted
/// to `/usr/lib`. Events whose path lacks the prefix are unmapped.
#[derive(Debug, Clone)]
pub struct PathSuffix {
    prefix: String,
}

impl PathSuffix {
    /// Creates the mapping for the given path prefix.
    pub fn new(prefix: impl Into<String>) -> Self {
        PathSuffix {
            prefix: prefix.into(),
        }
    }
}

impl Mapping for PathSuffix {
    fn keyed_by_call_path(&self) -> bool {
        true
    }

    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        _meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        let path = ctx.path(event);
        let Some(pos) = path.find(self.prefix.as_str()) else {
            return false;
        };
        let suffix = path[pos + self.prefix.len()..].trim_start_matches('/');
        let shown = if suffix.is_empty() { path } else { suffix };
        let _ = write!(out, "{}:{}", ctx.call_name(event), shown);
        true
    }
}

/// A site rule for [`SiteMap`]: paths starting with `prefix` are
/// abstracted to `alias`.
#[derive(Debug, Clone)]
pub struct SiteRule {
    /// Path prefix to match (longest match wins).
    pub prefix: String,
    /// Site variable shown instead (e.g. `$SCRATCH`).
    pub alias: String,
}

/// The experiments' mapping `f̄` (Sec. V): like Eq. 4 but with file paths
/// abstracted by site-specific variables — `/p/scratch/<user>/…` becomes
/// `$SCRATCH`, `/p/software/…` becomes `$SOFTWARE`, node-local paths
/// (`/dev/shm`, `/tmp`) become `Node Local`.
///
/// `extra_levels` keeps that many path components after the alias, which
/// is how Fig. 8b distinguishes `$SCRATCH/ssf` from `$SCRATCH/fpp`.
#[derive(Debug, Clone)]
pub struct SiteMap {
    rules: Vec<SiteRule>,
    /// Components kept after the alias.
    pub extra_levels: usize,
    /// Truncation depth (Eq. 4) for paths matching no rule.
    pub fallback_levels: usize,
}

impl SiteMap {
    /// Creates a site map from `(prefix, alias)` pairs.
    pub fn new(rules: impl IntoIterator<Item = (String, String)>) -> Self {
        let mut rules: Vec<SiteRule> = rules
            .into_iter()
            .map(|(prefix, alias)| SiteRule { prefix, alias })
            .collect();
        // Longest prefix first so overlapping rules resolve as expected.
        rules.sort_by_key(|r| std::cmp::Reverse(r.prefix.len()));
        SiteMap {
            rules,
            extra_levels: 0,
            fallback_levels: 2,
        }
    }

    /// Keeps `levels` path components after the alias (Fig. 8b uses 1).
    pub fn with_extra_levels(mut self, levels: usize) -> Self {
        self.extra_levels = levels;
        self
    }

    /// Sets the Eq. 4 truncation depth for unmatched paths.
    pub fn with_fallback_levels(mut self, levels: usize) -> Self {
        self.fallback_levels = levels;
        self
    }

    fn rewrite(&self, path: &str, out: &mut String) {
        for rule in &self.rules {
            if let Some(rest) = path.strip_prefix(rule.prefix.as_str()) {
                out.push_str(&rule.alias);
                if self.extra_levels > 0 {
                    let rest = rest.trim_start_matches('/');
                    for (i, comp) in rest.split('/').enumerate() {
                        if i >= self.extra_levels || comp.is_empty() {
                            break;
                        }
                        out.push('/');
                        out.push_str(comp);
                    }
                }
                return;
            }
        }
        out.push_str(truncate_path(path, self.fallback_levels));
    }
}

impl Mapping for SiteMap {
    fn keyed_by_call_path(&self) -> bool {
        true
    }

    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        _meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        let path = ctx.path(event);
        if path.is_empty() {
            return false;
        }
        let _ = write!(out, "{}:", ctx.call_name(event));
        self.rewrite(path, out);
        true
    }
}

/// Mapping from an arbitrary closure — the Rust analogue of handing a
/// Python function to `apply_mapping_fn` (Fig. 6 step 2b).
pub struct FnMapping<F>(pub F)
where
    F: Fn(&MapCtx<'_>, &CaseMeta, &Event) -> Option<String> + Sync;

impl<F> Mapping for FnMapping<F>
where
    F: Fn(&MapCtx<'_>, &CaseMeta, &Event) -> Option<String> + Sync,
{
    fn write_activity(
        &self,
        ctx: &MapCtx<'_>,
        meta: &CaseMeta,
        event: &Event,
        out: &mut String,
    ) -> bool {
        match (self.0)(ctx, meta, event) {
            Some(name) => {
                out.push_str(&name);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_model::{Event, Interner, Micros, Pid, Syscall};

    fn fixture(path: &str) -> (Interner, Event, CaseMeta) {
        let i = Interner::new();
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 1,
        };
        let e = Event::new(Pid(1), Syscall::Read, Micros(0), Micros(1), i.intern(path));
        (i, e, meta)
    }

    fn apply(m: &dyn Mapping, i: &Interner, meta: &CaseMeta, e: &Event) -> Option<String> {
        let snap = i.snapshot();
        let ctx = MapCtx { snapshot: &snap };
        m.activity_name(&ctx, meta, e)
    }

    #[test]
    fn truncate_path_matches_fig6_python() {
        // The paper's Python: split('/'); if len > 2 keep /dirs[1]/dirs[2].
        assert_eq!(
            truncate_path("/usr/lib/x86_64-linux-gnu/libselinux.so.1", 2),
            "/usr/lib"
        );
        assert_eq!(truncate_path("/etc/locale.alias", 2), "/etc/locale.alias");
        assert_eq!(truncate_path("/proc/filesystems", 2), "/proc/filesystems");
        assert_eq!(truncate_path("/dev/pts/7", 2), "/dev/pts");
        assert_eq!(truncate_path("/single", 2), "/single");
        assert_eq!(truncate_path("/a/b/c", 1), "/a");
        assert_eq!(truncate_path("relative/path", 2), "relative/path");
    }

    #[test]
    fn call_top_dirs_is_eq4() {
        let (i, e, meta) = fixture("/usr/lib/x86_64-linux-gnu/libselinux.so.1");
        let name = apply(&CallTopDirs::new(2), &i, &meta, &e).unwrap();
        assert_eq!(name, "read:/usr/lib");
    }

    #[test]
    fn call_top_dirs_skips_pathless_events() {
        let (i, e, meta) = fixture("");
        assert_eq!(apply(&CallTopDirs::new(2), &i, &meta, &e), None);
    }

    #[test]
    fn call_only_ignores_paths() {
        let (i, e, meta) = fixture("/any/path");
        assert_eq!(apply(&CallOnly, &i, &meta, &e).unwrap(), "read");
    }

    #[test]
    fn path_filter_restricts_domain() {
        let m = PathFilter::new("/usr/lib", CallTopDirs::new(2));
        let (i, e, meta) = fixture("/usr/lib/libc.so.6");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:/usr/lib");
        let (i, e, meta) = fixture("/etc/passwd");
        assert_eq!(apply(&m, &i, &meta, &e), None);
    }

    #[test]
    fn path_suffix_matches_fig4_names() {
        let m = PathSuffix::new("/usr/lib");
        let (i, e, meta) = fixture("/usr/lib/x86_64-linux-gnu/libselinux.so.1");
        assert_eq!(
            apply(&m, &i, &meta, &e).unwrap(),
            "read:x86_64-linux-gnu/libselinux.so.1"
        );
        let (i, e, meta) = fixture("/etc/passwd");
        assert_eq!(apply(&m, &i, &meta, &e), None);
    }

    #[test]
    fn site_map_abstracts_prefixes() {
        let m = SiteMap::new([
            ("/p/scratch/user1".to_string(), "$SCRATCH".to_string()),
            ("/p/software".to_string(), "$SOFTWARE".to_string()),
            ("/dev/shm".to_string(), "Node Local".to_string()),
            ("/tmp".to_string(), "Node Local".to_string()),
        ]);
        let (i, e, meta) = fixture("/p/scratch/user1/ssf/testfile");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:$SCRATCH");
        let (i, e, meta) = fixture("/dev/shm/mpi_shmem_0");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:Node Local");
        // Fallback truncation for unmatched paths.
        let (i, e, meta) = fixture("/usr/lib/x/y.so");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:/usr/lib");
    }

    #[test]
    fn site_map_extra_levels_distinguishes_subdirs() {
        // Fig. 8b: $SCRATCH/ssf vs $SCRATCH/fpp.
        let m = SiteMap::new([("/p/scratch/user1".to_string(), "$SCRATCH".to_string())])
            .with_extra_levels(1);
        let (i, e, meta) = fixture("/p/scratch/user1/ssf/testfile");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:$SCRATCH/ssf");
        let (i, e, meta) = fixture("/p/scratch/user1/fpp/testfile.00000042");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:$SCRATCH/fpp");
    }

    #[test]
    fn site_map_longest_prefix_wins() {
        let m = SiteMap::new([
            ("/p".to_string(), "$P".to_string()),
            ("/p/scratch".to_string(), "$SCRATCH".to_string()),
        ]);
        let (i, e, meta) = fixture("/p/scratch/x");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:$SCRATCH");
        let (i, e, meta) = fixture("/p/other/x");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "read:$P");
    }

    #[test]
    fn fn_mapping_closure() {
        let m = FnMapping(|ctx: &MapCtx<'_>, _meta: &CaseMeta, e: &Event| {
            let p = ctx.path(e);
            p.ends_with(".so.6").then(|| format!("lib:{p}"))
        });
        let (i, e, meta) = fixture("/usr/lib/libc.so.6");
        assert_eq!(apply(&m, &i, &meta, &e).unwrap(), "lib:/usr/lib/libc.so.6");
        let (i, e, meta) = fixture("/etc/passwd");
        assert_eq!(apply(&m, &i, &meta, &e), None);
    }

    #[test]
    fn other_syscalls_resolve_names() {
        let i = Interner::new();
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 1,
        };
        let e = Event::new(
            Pid(1),
            Syscall::Other(i.intern("statx")),
            Micros(0),
            Micros(1),
            i.intern("/x/y"),
        );
        let snap = i.snapshot();
        let ctx = MapCtx { snapshot: &snap };
        assert_eq!(
            CallTopDirs::new(2).activity_name(&ctx, &meta, &e).unwrap(),
            "statx:/x/y"
        );
    }
}
