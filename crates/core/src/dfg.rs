//! The Directly-Follows-Graph (Sec. IV-A).
//!
//! Given an activity log `L_f(C)`, the DFG `G[L_f(C)]` has the
//! activities as nodes plus a start node `●` and an end node `■`
//! (every trace is implicitly wrapped `⟨●, a_1, …, a_n, ■⟩`). An edge
//! `(a_1, a_2)` exists iff `a_1` *directly follows* `a_2` in some trace;
//! edge weights count how often the relation was observed (the numbers on
//! the edges of Fig. 3).
//!
//! Construction is a single O(n) pass over the mapped log. For large
//! logs a map-reduce construction is provided ([`Dfg::par_from_mapped`]):
//! cases are independent, so per-worker partial DFGs merge by edge-wise
//! addition — the strategy of the paper's scalability references
//! [Leemans et al. 24; Evermann 25].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::activity::{ActivityId, ActivityTable};
use crate::activity_log::ActivityLog;
use crate::mapped::MappedLog;

/// A DFG node: the artificial start/end markers or an activity.
///
/// The `Ord` instance puts `Start` first and `End` last, giving
/// deterministic, render-friendly iteration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// The start marker `●` prepended to every trace.
    Start,
    /// An activity node.
    Act(ActivityId),
    /// The end marker `■` appended to every trace.
    End,
}

impl Node {
    /// The activity id, when this is an activity node.
    pub fn activity(&self) -> Option<ActivityId> {
        match self {
            Node::Act(id) => Some(*id),
            _ => None,
        }
    }
}

/// A Directly-Follows-Graph with observation counts.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// Activity names (owned copy — DFGs outlive their `MappedLog`).
    table: ActivityTable,
    /// Directed edges with observation counts.
    edges: BTreeMap<(Node, Node), u64>,
    /// Per-node occurrence counts: for activities, the number of mapped
    /// events; for `Start`/`End`, the number of contributing traces.
    occurrences: BTreeMap<Node, u64>,
    /// Number of cases that contributed at least one mapped event.
    case_count: u64,
}

impl Dfg {
    /// Builds the DFG from a mapped log in one sequential pass.
    pub fn from_mapped(mapped: &MappedLog<'_>) -> Dfg {
        let mut dfg = Dfg {
            table: mapped.table().clone(),
            edges: BTreeMap::new(),
            occurrences: BTreeMap::new(),
            case_count: 0,
        };
        for case_idx in 0..mapped.log().case_count() {
            dfg.add_trace(mapped.assignments()[case_idx].iter().filter_map(|a| *a));
        }
        dfg
    }

    /// Builds the DFG from an explicit activity log (useful when the
    /// multiset is already materialized; weights multiply by trace
    /// multiplicity).
    pub fn from_activity_log(alog: &ActivityLog, table: &ActivityTable) -> Dfg {
        let mut dfg = Dfg {
            table: table.clone(),
            edges: BTreeMap::new(),
            occurrences: BTreeMap::new(),
            case_count: 0,
        };
        for entry in alog.entries() {
            for _ in 0..entry.multiplicity {
                dfg.add_trace(entry.activities.iter().copied());
            }
        }
        dfg
    }

    /// Map-reduce construction: cases are partitioned across `threads`
    /// workers (0 = available parallelism); partial DFGs are merged by
    /// edge-wise addition. Produces exactly the same graph as
    /// [`Dfg::from_mapped`].
    pub fn par_from_mapped(mapped: &MappedLog<'_>, threads: usize) -> Dfg {
        let n_cases = mapped.log().case_count();
        let workers = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        }
        .min(n_cases.max(1));
        if workers <= 1 {
            return Self::from_mapped(mapped);
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded::<Dfg>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let mapped_ref = &mapped;
                scope.spawn(move || {
                    let mut local = Dfg {
                        table: ActivityTable::new(), // filled on merge
                        edges: BTreeMap::new(),
                        occurrences: BTreeMap::new(),
                        case_count: 0,
                    };
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= mapped_ref.log().case_count() {
                            break;
                        }
                        local.add_trace(
                            mapped_ref.assignments()[idx].iter().filter_map(|a| *a),
                        );
                    }
                    let _ = tx.send(local);
                });
            }
            drop(tx);
            let mut merged = Dfg {
                table: mapped.table().clone(),
                edges: BTreeMap::new(),
                occurrences: BTreeMap::new(),
                case_count: 0,
            };
            for local in rx {
                merged.merge_counts(&local);
            }
            merged
        })
    }

    /// Adds one trace `⟨a_1, …, a_n⟩` (implicitly wrapped with start/end
    /// markers). Empty traces contribute nothing.
    fn add_trace(&mut self, activities: impl IntoIterator<Item = ActivityId>) {
        let mut prev: Option<Node> = None;
        for act in activities {
            let node = Node::Act(act);
            *self.occurrences.entry(node).or_insert(0) += 1;
            let from = prev.unwrap_or(Node::Start);
            *self.edges.entry((from, node)).or_insert(0) += 1;
            prev = Some(node);
        }
        if let Some(last) = prev {
            *self.edges.entry((last, Node::End)).or_insert(0) += 1;
            self.case_count += 1;
            *self.occurrences.entry(Node::Start).or_insert(0) += 1;
            *self.occurrences.entry(Node::End).or_insert(0) += 1;
        }
    }

    /// Edge-wise addition of another DFG's counts (same activity-id
    /// space required — used by the map-reduce merge).
    fn merge_counts(&mut self, other: &Dfg) {
        for (edge, count) in &other.edges {
            *self.edges.entry(*edge).or_insert(0) += count;
        }
        for (node, count) in &other.occurrences {
            *self.occurrences.entry(*node).or_insert(0) += count;
        }
        self.case_count += other.case_count;
    }

    /// The activity name table.
    pub fn table(&self) -> &ActivityTable {
        &self.table
    }

    /// Number of activity nodes (excludes start/end).
    pub fn activity_node_count(&self) -> usize {
        self.occurrences
            .keys()
            .filter(|n| matches!(n, Node::Act(_)))
            .count()
    }

    /// Number of traces (cases) that contributed.
    pub fn case_count(&self) -> u64 {
        self.case_count
    }

    /// All edges with counts, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &c)| (a, b, c))
    }

    /// All nodes that occur, in deterministic order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.occurrences.keys().copied()
    }

    /// Occurrence count of a node (events for activities, traces for
    /// start/end).
    pub fn occurrences(&self, node: Node) -> u64 {
        self.occurrences.get(&node).copied().unwrap_or(0)
    }

    /// Count on an edge (0 when absent).
    pub fn edge_count(&self, from: Node, to: Node) -> u64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Whether an activity with this name occurs in the graph.
    pub fn has_activity(&self, name: &str) -> bool {
        self.table
            .get(name)
            .map(Node::Act)
            .is_some_and(|n| self.occurrences.contains_key(&n))
    }

    /// Edge count between two *named* endpoints; start/end are named
    /// `"●"` and `"■"`. Returns 0 when either endpoint or the edge is
    /// missing.
    pub fn edge_count_named(&self, from: &str, to: &str) -> u64 {
        let Some(from) = self.node_by_name(from) else { return 0 };
        let Some(to) = self.node_by_name(to) else { return 0 };
        self.edge_count(from, to)
    }

    /// Resolves `"●"`, `"■"` or an activity name to a node.
    pub fn node_by_name(&self, name: &str) -> Option<Node> {
        match name {
            "●" => Some(Node::Start),
            "■" => Some(Node::End),
            _ => self.table.get(name).map(Node::Act),
        }
    }

    /// The display name of a node.
    pub fn node_name(&self, node: Node) -> &str {
        match node {
            Node::Start => "●",
            Node::End => "■",
            Node::Act(id) => self.table.name(id),
        }
    }

    /// Sum of all edge observation counts.
    pub fn total_edge_observations(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Returns a copy keeping only edges observed at least `min_count`
    /// times; activity nodes left with no incident edge are dropped.
    ///
    /// Frequency filtering is the standard process-mining simplification
    /// for visual analysis of large graphs (the paper notes the mapping
    /// should keep `m` small "otherwise the visual analysis of the DFG
    /// would be tedious"). The filtered graph is a *view*: node
    /// occurrence counts keep their original values and the
    /// flow-conservation invariants of [`Dfg::check_invariants`] no
    /// longer hold on it.
    pub fn filter_edges(&self, min_count: u64) -> Dfg {
        let edges: BTreeMap<(Node, Node), u64> = self
            .edges
            .iter()
            .filter(|(_, &c)| c >= min_count)
            .map(|(&e, &c)| (e, c))
            .collect();
        let mut keep: std::collections::BTreeSet<Node> = std::collections::BTreeSet::new();
        for &(from, to) in edges.keys() {
            keep.insert(from);
            keep.insert(to);
        }
        let occurrences = self
            .occurrences
            .iter()
            .filter(|(n, _)| keep.contains(n))
            .map(|(&n, &c)| (n, c))
            .collect();
        Dfg {
            table: self.table.clone(),
            edges,
            occurrences,
            case_count: self.case_count,
        }
    }

    /// Checks the flow-conservation invariants implied by the trace
    /// construction: per activity node, in-flow = out-flow = occurrence
    /// count; start out-flow = end in-flow = case count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut in_flow: BTreeMap<Node, u64> = BTreeMap::new();
        let mut out_flow: BTreeMap<Node, u64> = BTreeMap::new();
        for ((from, to), c) in &self.edges {
            *out_flow.entry(*from).or_insert(0) += c;
            *in_flow.entry(*to).or_insert(0) += c;
        }
        for (&node, &occ) in &self.occurrences {
            match node {
                Node::Act(_) => {
                    let i = in_flow.get(&node).copied().unwrap_or(0);
                    let o = out_flow.get(&node).copied().unwrap_or(0);
                    if i != occ || o != occ {
                        return Err(format!(
                            "node {} has in={i} out={o} occurrences={occ}",
                            self.node_name(node)
                        ));
                    }
                }
                Node::Start => {
                    let o = out_flow.get(&node).copied().unwrap_or(0);
                    if o != self.case_count {
                        return Err(format!("start out-flow {o} != case count {}", self.case_count));
                    }
                }
                Node::End => {
                    let i = in_flow.get(&node).copied().unwrap_or(0);
                    if i != self.case_count {
                        return Err(format!("end in-flow {i} != case count {}", self.case_count));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{CallTopDirs, PathFilter};
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    /// Builds the fictitious event-log of the paper's Activity-log
    /// example: traces ⟨a,a,b⟩, ⟨a,a,b⟩, ⟨a,c⟩.
    fn fictitious_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let mut push = |rid: u32, paths: &[&str]| {
            let meta = CaseMeta { cid: i.intern("x"), host: i.intern("h"), rid };
            let events = paths
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    Event::new(Pid(rid), Syscall::Read, Micros(k as u64), Micros(1), i.intern(p))
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        };
        push(0, &["/a", "/a", "/b"]);
        push(1, &["/a", "/a", "/b"]);
        push(2, &["/a", "/c"]);
        log
    }

    fn build(log: &EventLog) -> (Dfg, MappedLog<'_>) {
        let mapped = MappedLog::new(log, &CallTopDirs::new(2));
        (Dfg::from_mapped(&mapped), mapped)
    }

    #[test]
    fn edges_and_counts_match_definition() {
        let log = fictitious_log();
        let (dfg, _mapped) = build(&log);
        // Activities: read:/a, read:/b, read:/c.
        assert_eq!(dfg.activity_node_count(), 3);
        assert_eq!(dfg.case_count(), 3);
        // ● → a observed in all three traces.
        assert_eq!(dfg.edge_count_named("●", "read:/a"), 3);
        // a → a (self loop) in two traces.
        assert_eq!(dfg.edge_count_named("read:/a", "read:/a"), 2);
        assert_eq!(dfg.edge_count_named("read:/a", "read:/b"), 2);
        assert_eq!(dfg.edge_count_named("read:/a", "read:/c"), 1);
        assert_eq!(dfg.edge_count_named("read:/b", "■"), 2);
        assert_eq!(dfg.edge_count_named("read:/c", "■"), 1);
        // No invented edges.
        assert_eq!(dfg.edge_count_named("read:/b", "read:/c"), 0);
        assert_eq!(dfg.edge_count_named("read:/c", "read:/b"), 0);
        // Occurrences.
        assert_eq!(dfg.occurrences(dfg.node_by_name("read:/a").unwrap()), 5);
        assert_eq!(dfg.occurrences(dfg.node_by_name("read:/b").unwrap()), 2);
        dfg.check_invariants().unwrap();
    }

    #[test]
    fn from_activity_log_equals_from_mapped() {
        let log = fictitious_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let direct = Dfg::from_mapped(&mapped);
        let alog = crate::activity_log::ActivityLog::from_mapped(&mapped);
        let via_alog = Dfg::from_activity_log(&alog, mapped.table());
        assert_eq!(
            direct.edges().collect::<Vec<_>>(),
            via_alog.edges().collect::<Vec<_>>()
        );
        assert_eq!(direct.case_count(), via_alog.case_count());
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for rid in 0..37 {
            let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid };
            let events = (0..50)
                .map(|k| {
                    let p = format!("/dir{}/f{}", k % 5, (k + rid as usize) % 7);
                    Event::new(Pid(rid), Syscall::Read, Micros(k as u64), Micros(1), i.intern(&p))
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let seq = Dfg::from_mapped(&mapped);
        for threads in [2, 3, 8] {
            let par = Dfg::par_from_mapped(&mapped, threads);
            assert_eq!(
                seq.edges().collect::<Vec<_>>(),
                par.edges().collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(seq.case_count(), par.case_count());
            par.check_invariants().unwrap();
        }
    }

    #[test]
    fn empty_traces_do_not_create_start_end_edge() {
        let log = fictitious_log();
        // Filter maps nothing.
        let m = PathFilter::new("/nonexistent", CallTopDirs::new(2));
        let mapped = MappedLog::new(&log, &m);
        let dfg = Dfg::from_mapped(&mapped);
        assert_eq!(dfg.case_count(), 0);
        assert_eq!(dfg.total_edge_observations(), 0);
        assert_eq!(dfg.nodes().count(), 0);
    }

    #[test]
    fn single_event_trace_wraps_with_start_and_end() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid: 0 };
        log.push_case(Case::from_events(
            meta,
            vec![Event::new(Pid(0), Syscall::Read, Micros(0), Micros(1), i.intern("/x/y"))],
        ));
        let (dfg, _) = build(&log);
        assert_eq!(dfg.edge_count_named("●", "read:/x/y"), 1);
        assert_eq!(dfg.edge_count_named("read:/x/y", "■"), 1);
        assert_eq!(dfg.case_count(), 1);
        dfg.check_invariants().unwrap();
    }

    #[test]
    fn filter_edges_keeps_frequent_relations() {
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        // Counts: ●→a 3, a→a 2, a→b 2, a→c 1, b→■ 2, c→■ 1.
        let filtered = dfg.filter_edges(2);
        assert_eq!(filtered.edge_count_named("●", "read:/a"), 3);
        assert_eq!(filtered.edge_count_named("read:/a", "read:/a"), 2);
        assert_eq!(filtered.edge_count_named("read:/a", "read:/c"), 0);
        // read:/c loses all incident edges and disappears.
        assert!(!filtered
            .nodes()
            .any(|n| filtered.node_name(n) == "read:/c"));
        assert!(filtered.has_activity("read:/b"));
        // Threshold above every count empties the graph.
        let empty = dfg.filter_edges(100);
        assert_eq!(empty.total_edge_observations(), 0);
        assert_eq!(empty.nodes().count(), 0);
        // Threshold 0/1 is the identity.
        let same = dfg.filter_edges(1);
        assert_eq!(
            same.edges().collect::<Vec<_>>(),
            dfg.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_ordering_start_activities_end() {
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        let nodes: Vec<Node> = dfg.nodes().collect();
        assert_eq!(nodes.first(), Some(&Node::Start));
        assert_eq!(nodes.last(), Some(&Node::End));
    }
}
