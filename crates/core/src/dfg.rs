//! The Directly-Follows-Graph (Sec. IV-A).
//!
//! Given an activity log `L_f(C)`, the DFG `G[L_f(C)]` has the
//! activities as nodes plus a start node `●` and an end node `■`
//! (every trace is implicitly wrapped `⟨●, a_1, …, a_n, ■⟩`). An edge
//! `(a_1, a_2)` exists iff `a_1` *directly follows* `a_2` in some trace;
//! edge weights count how often the relation was observed (the numbers on
//! the edges of Fig. 3).
//!
//! Construction is a single O(n) pass over the mapped log. Counts
//! accumulate in *dense* `Vec`-indexed storage: activities map to their
//! dense [`ActivityId`] index and the start/end markers to two reserved
//! trailing indices, so the per-event hot path is two array adds instead
//! of ordered-map lookups. (Graphs too large for an adjacency matrix
//! fall back to a hash map — still O(1) amortized per increment.) The
//! deterministically ordered edge view that rendering and tests consume
//! is materialized lazily, on first access.
//!
//! For large logs a map-reduce construction is provided
//! ([`Dfg::par_from_mapped`]): cases are independent, so per-worker
//! *dense partial accumulators* merge by element-wise vector addition —
//! the strategy of the paper's scalability references [Leemans et al.
//! 24; Evermann 25] — without shipping whole graphs through channels.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::activity::{ActivityId, ActivityTable};
use crate::activity_log::ActivityLog;
use crate::mapped::MappedLog;

/// A DFG node: the artificial start/end markers or an activity.
///
/// The `Ord` instance puts `Start` first and `End` last, giving
/// deterministic, render-friendly iteration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// The start marker `●` prepended to every trace.
    Start,
    /// An activity node.
    Act(ActivityId),
    /// The end marker `■` appended to every trace.
    End,
}

impl Node {
    /// The activity id, when this is an activity node.
    pub fn activity(&self) -> Option<ActivityId> {
        match self {
            Node::Act(id) => Some(*id),
            _ => None,
        }
    }
}

/// Above this node count the dense adjacency matrix stops being cheap
/// (514² × 8 B ≈ 2 MB per accumulator — and the map-reduce path holds
/// one accumulator *per worker*); edge accumulation falls back to a
/// hash map, still O(1) amortized per increment.
const MATRIX_MAX_NODES: usize = 512;

/// Edge-count storage over dense node indices `0..n`.
#[derive(Debug, Clone)]
enum EdgeCounts {
    /// Row-major `n × n` adjacency counts.
    Matrix(Vec<u64>),
    /// `(from, to) → count`, for graphs too large for a matrix.
    Sparse(HashMap<(u32, u32), u64>),
}

impl EdgeCounts {
    fn new(n: usize) -> EdgeCounts {
        if n <= MATRIX_MAX_NODES {
            EdgeCounts::Matrix(vec![0; n * n])
        } else {
            EdgeCounts::Sparse(HashMap::new())
        }
    }

    #[inline]
    fn inc(&mut self, n: usize, from: usize, to: usize, w: u64) {
        match self {
            EdgeCounts::Matrix(counts) => counts[from * n + to] += w,
            EdgeCounts::Sparse(map) => *map.entry((from as u32, to as u32)).or_insert(0) += w,
        }
    }

    #[inline]
    fn get(&self, n: usize, from: usize, to: usize) -> u64 {
        match self {
            EdgeCounts::Matrix(counts) => counts[from * n + to],
            EdgeCounts::Sparse(map) => map.get(&(from as u32, to as u32)).copied().unwrap_or(0),
        }
    }

    fn total(&self) -> u64 {
        match self {
            EdgeCounts::Matrix(counts) => counts.iter().sum(),
            EdgeCounts::Sparse(map) => map.values().sum(),
        }
    }

    /// Iterates non-zero `(from, to, count)` entries (arbitrary order).
    fn iter_nonzero<'a>(&'a self, n: usize) -> Box<dyn Iterator<Item = (usize, usize, u64)> + 'a> {
        match self {
            EdgeCounts::Matrix(counts) => Box::new(
                counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(move |(i, &c)| (i / n, i % n, c)),
            ),
            EdgeCounts::Sparse(map) => {
                Box::new(map.iter().map(|(&(f, t), &c)| (f as usize, t as usize, c)))
            }
        }
    }

    fn merge(&mut self, other: &EdgeCounts) {
        match (self, other) {
            (EdgeCounts::Matrix(a), EdgeCounts::Matrix(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (EdgeCounts::Sparse(a), EdgeCounts::Sparse(b)) => {
                for (&edge, &c) in b {
                    *a.entry(edge).or_insert(0) += c;
                }
            }
            _ => unreachable!("partials share the node-count threshold"),
        }
    }
}

/// The dense count accumulator: node indices `0..m` are activities (by
/// [`ActivityId`]), `m` is the start marker, `m + 1` the end marker.
#[derive(Debug, Clone)]
struct DenseAcc {
    /// Total node slots `m + 2`.
    n: usize,
    /// Per-node occurrence counts.
    occ: Vec<u64>,
    edges: EdgeCounts,
    case_count: u64,
}

impl DenseAcc {
    fn new(activities: usize) -> DenseAcc {
        let n = activities + 2;
        DenseAcc {
            n,
            occ: vec![0; n],
            edges: EdgeCounts::new(n),
            case_count: 0,
        }
    }

    #[inline]
    fn start_idx(&self) -> usize {
        self.n - 2
    }

    #[inline]
    fn end_idx(&self) -> usize {
        self.n - 1
    }

    /// Adds one trace `⟨a_1, …, a_n⟩` with multiplicity `w` (implicitly
    /// wrapped with start/end markers). Empty traces contribute nothing.
    fn add_trace_weighted(&mut self, activities: impl IntoIterator<Item = ActivityId>, w: u64) {
        let mut prev: Option<usize> = None;
        for act in activities {
            let idx = act.index();
            self.occ[idx] += w;
            let from = prev.unwrap_or(self.n - 2);
            self.edges.inc(self.n, from, idx, w);
            prev = Some(idx);
        }
        if let Some(last) = prev {
            self.edges.inc(self.n, last, self.n - 1, w);
            self.case_count += w;
            self.occ[self.n - 2] += w;
            self.occ[self.n - 1] += w;
        }
    }

    /// Element-wise addition of another accumulator over the same
    /// activity-id space (the map-reduce merge).
    fn merge(&mut self, other: &DenseAcc) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.occ.iter_mut().zip(&other.occ) {
            *a += b;
        }
        self.edges.merge(&other.edges);
        self.case_count += other.case_count;
    }
}

/// A Directly-Follows-Graph with observation counts.
#[derive(Debug)]
pub struct Dfg {
    /// Activity names (owned copy — DFGs outlive their `MappedLog`).
    table: ActivityTable,
    /// Dense counts; the ordered edge view below derives from it.
    acc: DenseAcc,
    /// Deterministically ordered edges, materialized on first access.
    ordered: OnceLock<BTreeMap<(Node, Node), u64>>,
}

impl Clone for Dfg {
    fn clone(&self) -> Dfg {
        Dfg {
            table: self.table.clone(),
            acc: self.acc.clone(),
            ordered: OnceLock::new(),
        }
    }
}

impl Dfg {
    fn from_acc(table: ActivityTable, acc: DenseAcc) -> Dfg {
        Dfg {
            table,
            acc,
            ordered: OnceLock::new(),
        }
    }

    /// Builds the DFG from a mapped log in one sequential pass.
    ///
    /// ```
    /// use st_core::prelude::*;
    /// use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    /// use std::sync::Arc;
    ///
    /// // One trace ⟨read:/etc/passwd, read:/etc/passwd⟩ ...
    /// let mut log = EventLog::with_new_interner();
    /// let i = Arc::clone(log.interner());
    /// let meta = CaseMeta { cid: i.intern("a"), host: i.intern("h"), rid: 0 };
    /// log.push_case(Case::from_events(meta, vec![
    ///     Event::new(Pid(1), Syscall::Read, Micros(0), Micros(1), i.intern("/etc/passwd")),
    ///     Event::new(Pid(1), Syscall::Read, Micros(2), Micros(1), i.intern("/etc/passwd")),
    /// ]));
    ///
    /// // ... yields ● → read:/etc/passwd → read:/etc/passwd → ■.
    /// let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
    /// let dfg = Dfg::from_mapped(&mapped);
    /// assert_eq!(dfg.case_count(), 1);
    /// assert_eq!(dfg.edge_count_named("●", "read:/etc/passwd"), 1);
    /// assert_eq!(dfg.edge_count_named("read:/etc/passwd", "read:/etc/passwd"), 1);
    /// assert_eq!(dfg.edge_count_named("read:/etc/passwd", "■"), 1);
    /// ```
    pub fn from_mapped(mapped: &MappedLog<'_>) -> Dfg {
        let _span = st_obs::span!("dfg.build");
        let mut acc = DenseAcc::new(mapped.table().len());
        for case_idx in 0..mapped.log().case_count() {
            acc.add_trace_weighted(mapped.assignments()[case_idx].iter().filter_map(|a| *a), 1);
        }
        Dfg::from_acc(mapped.table().clone(), acc)
    }

    /// Builds the DFG of a *slice* of the mapped log: only the events a
    /// [`st_model::LogView`] keeps contribute traces — the projection
    /// hook behind per-file / per-rank DFG families. Map the log once,
    /// then project any number of slices; each projection is one O(n')
    /// pass over the kept events, with no re-mapping and no event
    /// copies. The resulting graph shares the full log's activity
    /// table, so its DFGs stay name-comparable (and id-comparable)
    /// across slices.
    ///
    /// The result equals [`Dfg::from_mapped`] over the materialized
    /// slice up to activity-id numbering (names and counts align; the
    /// slice's own table would number only the surviving activities).
    ///
    /// `view` must slice the same [`st_model::EventLog`] the mapped log
    /// was built from; panics otherwise.
    pub fn from_mapped_view(mapped: &MappedLog<'_>, view: &st_model::LogView<'_>) -> Dfg {
        let _span = st_obs::span!("dfg.build.view");
        assert!(
            std::ptr::eq(mapped.log(), view.log()),
            "view must slice the same EventLog this MappedLog was built from"
        );
        let mut acc = DenseAcc::new(mapped.table().len());
        for s in view.slices() {
            let row = &mapped.assignments()[s.case_idx];
            acc.add_trace_weighted(s.events.iter().filter_map(|&k| row[k as usize]), 1);
        }
        Dfg::from_acc(mapped.table().clone(), acc)
    }

    /// Builds the DFG from an explicit activity log (useful when the
    /// multiset is already materialized; weights multiply by trace
    /// multiplicity).
    pub fn from_activity_log(alog: &ActivityLog, table: &ActivityTable) -> Dfg {
        let mut acc = DenseAcc::new(table.len());
        for entry in alog.entries() {
            acc.add_trace_weighted(entry.activities.iter().copied(), entry.multiplicity as u64);
        }
        Dfg::from_acc(table.clone(), acc)
    }

    /// Map-reduce construction: cases are partitioned across `threads`
    /// workers (0 = available parallelism); per-worker dense partial
    /// accumulators are merged by element-wise addition. Produces
    /// exactly the same graph as [`Dfg::from_mapped`].
    pub fn par_from_mapped(mapped: &MappedLog<'_>, threads: usize) -> Dfg {
        let n_cases = mapped.log().case_count();
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(n_cases.max(1));
        if workers <= 1 {
            return Self::from_mapped(mapped);
        }

        let _span = st_obs::span!("dfg.build.par", workers = workers);
        let activities = mapped.table().len();
        let next = AtomicUsize::new(0);
        let partials: Vec<DenseAcc> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let mapped_ref = &mapped;
                    scope.spawn(move || {
                        let mut local = DenseAcc::new(activities);
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= mapped_ref.log().case_count() {
                                break;
                            }
                            local.add_trace_weighted(
                                mapped_ref.assignments()[idx].iter().filter_map(|a| *a),
                                1,
                            );
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dfg worker panicked"))
                .collect()
        });

        let mut partials = partials.into_iter();
        let mut merged = partials.next().expect("at least one worker");
        for partial in partials {
            merged.merge(&partial);
        }
        Dfg::from_acc(mapped.table().clone(), merged)
    }

    /// Number of activity slots (the dense id space, not the occurring
    /// node count).
    fn activity_slots(&self) -> usize {
        self.acc.n - 2
    }

    /// Dense index of a node; `None` for activity ids outside this
    /// graph's id space (they must not alias the start/end slots).
    fn node_idx(&self, node: Node) -> Option<usize> {
        match node {
            Node::Start => Some(self.acc.start_idx()),
            Node::End => Some(self.acc.end_idx()),
            Node::Act(id) => (id.index() < self.activity_slots()).then(|| id.index()),
        }
    }

    fn idx_node(&self, idx: usize) -> Node {
        if idx == self.acc.start_idx() {
            Node::Start
        } else if idx == self.acc.end_idx() {
            Node::End
        } else {
            Node::Act(ActivityId(idx as u32))
        }
    }

    /// The deterministically ordered edge map, built on first use.
    fn ordered(&self) -> &BTreeMap<(Node, Node), u64> {
        self.ordered.get_or_init(|| {
            self.acc
                .edges
                .iter_nonzero(self.acc.n)
                .map(|(from, to, c)| ((self.idx_node(from), self.idx_node(to)), c))
                .collect()
        })
    }

    /// The activity name table.
    pub fn table(&self) -> &ActivityTable {
        &self.table
    }

    /// Number of activity nodes (excludes start/end).
    pub fn activity_node_count(&self) -> usize {
        self.acc.occ[..self.activity_slots()]
            .iter()
            .filter(|&&c| c > 0)
            .count()
    }

    /// Number of traces (cases) that contributed.
    pub fn case_count(&self) -> u64 {
        self.acc.case_count
    }

    /// All edges with counts, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, u64)> + '_ {
        self.ordered().iter().map(|(&(a, b), &c)| (a, b, c))
    }

    /// All nodes that occur, in deterministic order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        let m = self.activity_slots();
        let start = (self.acc.occ[self.acc.start_idx()] > 0).then_some(Node::Start);
        let end = (self.acc.occ[self.acc.end_idx()] > 0).then_some(Node::End);
        start
            .into_iter()
            .chain(
                self.acc.occ[..m]
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, _)| Node::Act(ActivityId(i as u32))),
            )
            .chain(end)
    }

    /// Occurrence count of a node (events for activities, traces for
    /// start/end).
    pub fn occurrences(&self, node: Node) -> u64 {
        self.node_idx(node)
            .map(|idx| self.acc.occ[idx])
            .unwrap_or(0)
    }

    /// Count on an edge (0 when absent). O(1) on the dense storage.
    pub fn edge_count(&self, from: Node, to: Node) -> u64 {
        match (self.node_idx(from), self.node_idx(to)) {
            (Some(f), Some(t)) => self.acc.edges.get(self.acc.n, f, t),
            _ => 0,
        }
    }

    /// Whether an activity with this name occurs in the graph.
    pub fn has_activity(&self, name: &str) -> bool {
        self.table
            .get(name)
            .is_some_and(|id| self.acc.occ.get(id.index()).copied().unwrap_or(0) > 0)
    }

    /// Edge count between two *named* endpoints; start/end are named
    /// `"●"` and `"■"`. Returns 0 when either endpoint or the edge is
    /// missing.
    pub fn edge_count_named(&self, from: &str, to: &str) -> u64 {
        let Some(from) = self.node_by_name(from) else {
            return 0;
        };
        let Some(to) = self.node_by_name(to) else {
            return 0;
        };
        self.edge_count(from, to)
    }

    /// Resolves `"●"`, `"■"` or an activity name to a node.
    pub fn node_by_name(&self, name: &str) -> Option<Node> {
        match name {
            "●" => Some(Node::Start),
            "■" => Some(Node::End),
            _ => self.table.get(name).map(Node::Act),
        }
    }

    /// The display name of a node.
    pub fn node_name(&self, node: Node) -> &str {
        match node {
            Node::Start => "●",
            Node::End => "■",
            Node::Act(id) => self.table.name(id),
        }
    }

    /// Sum of all edge observation counts.
    pub fn total_edge_observations(&self) -> u64 {
        self.acc.edges.total()
    }

    /// Returns a copy keeping only edges observed at least `min_count`
    /// times; activity nodes left with no incident edge are dropped.
    ///
    /// Frequency filtering is the standard process-mining simplification
    /// for visual analysis of large graphs (the paper notes the mapping
    /// should keep `m` small "otherwise the visual analysis of the DFG
    /// would be tedious"). The filtered graph is a *view*: node
    /// occurrence counts keep their original values and the
    /// flow-conservation invariants of [`Dfg::check_invariants`] no
    /// longer hold on it.
    pub fn filter_edges(&self, min_count: u64) -> Dfg {
        let n = self.acc.n;
        let mut edges = EdgeCounts::new(n);
        let mut incident = vec![false; n];
        for (from, to, c) in self.acc.edges.iter_nonzero(n) {
            if c >= min_count {
                edges.inc(n, from, to, c);
                incident[from] = true;
                incident[to] = true;
            }
        }
        let occ = self
            .acc
            .occ
            .iter()
            .zip(&incident)
            .map(|(&c, &keep)| if keep { c } else { 0 })
            .collect();
        Dfg::from_acc(
            self.table.clone(),
            DenseAcc {
                n,
                occ,
                edges,
                case_count: self.acc.case_count,
            },
        )
    }

    /// Checks the flow-conservation invariants implied by the trace
    /// construction: per activity node, in-flow = out-flow = occurrence
    /// count; start out-flow = end in-flow = case count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.acc.n;
        let mut in_flow = vec![0u64; n];
        let mut out_flow = vec![0u64; n];
        for (from, to, c) in self.acc.edges.iter_nonzero(n) {
            out_flow[from] += c;
            in_flow[to] += c;
        }
        for idx in 0..n {
            let occ = self.acc.occ[idx];
            if occ == 0 {
                continue;
            }
            match self.idx_node(idx) {
                node @ Node::Act(_) => {
                    let (i, o) = (in_flow[idx], out_flow[idx]);
                    if i != occ || o != occ {
                        return Err(format!(
                            "node {} has in={i} out={o} occurrences={occ}",
                            self.node_name(node)
                        ));
                    }
                }
                Node::Start => {
                    let o = out_flow[idx];
                    if o != self.acc.case_count {
                        return Err(format!(
                            "start out-flow {o} != case count {}",
                            self.acc.case_count
                        ));
                    }
                }
                Node::End => {
                    let i = in_flow[idx];
                    if i != self.acc.case_count {
                        return Err(format!(
                            "end in-flow {i} != case count {}",
                            self.acc.case_count
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Sentinel edge index for the start marker in [`DfgAccumulator`]'s
/// sparse storage (activity ids stay well below it).
const ACC_START: u32 = u32::MAX;
/// Sentinel edge index for the end marker.
const ACC_END: u32 = u32::MAX - 1;

/// Incremental DFG accumulator for live ingest.
///
/// The batch constructors ([`Dfg::from_mapped`] and friends) need the
/// whole activity space up front — the dense storage is sized to the
/// mapped log's table. A live service doesn't have that luxury:
/// activities appear one event at a time, across many concurrent
/// streams, and the graph must be queryable *between* events. This
/// accumulator grows its activity table on first appearance, counts
/// edges sparsely, and merges with other accumulators by name-aligned
/// vector addition — the same mechanism [`Dfg::par_from_mapped`] uses
/// for its per-worker partials, extended to partials whose id spaces
/// grew independently.
///
/// ```
/// use st_core::{Dfg, DfgAccumulator};
///
/// // Two streams observed independently (e.g. two connections):
/// let mut a = DfgAccumulator::new();
/// a.observe("read:/etc");
/// a.observe("read:/etc");
/// a.close_trace();
/// let mut b = DfgAccumulator::new();
/// b.observe("read:/etc");
/// b.observe("write:/tmp");
/// b.close_trace();
///
/// // Merging is a name-aligned vector addition, never a rescan:
/// a.merge(&b);
/// let dfg: Dfg = a.to_dfg();
/// assert_eq!(dfg.case_count(), 2);
/// assert_eq!(dfg.edge_count_named("●", "read:/etc"), 2);
/// assert_eq!(dfg.edge_count_named("read:/etc", "read:/etc"), 1);
/// assert_eq!(dfg.edge_count_named("read:/etc", "write:/tmp"), 1);
/// dfg.check_invariants().unwrap();
/// ```
///
/// One accumulator tracks *one* open trace at a time (`observe` extends
/// it, `close_trace` seals it); a multi-stream service keeps one
/// accumulator per stream and merges on demand. After every open trace
/// is closed, [`DfgAccumulator::to_dfg`] satisfies
/// [`Dfg::check_invariants`] and equals the batch-built graph over the
/// same traces; with a trace still open it is the honest partial view
/// (the open trace's edges so far, no end marker yet).
#[derive(Debug, Clone, Default)]
pub struct DfgAccumulator {
    table: ActivityTable,
    /// Per-activity occurrence counts, indexed by [`ActivityId`].
    occ: Vec<u64>,
    /// Sparse `(from, to) → count` over activity ids plus the
    /// [`ACC_START`]/[`ACC_END`] sentinels.
    edges: HashMap<(u32, u32), u64>,
    start_occ: u64,
    end_occ: u64,
    case_count: u64,
    /// Last activity of the open trace (`None` between traces).
    prev: Option<ActivityId>,
}

impl DfgAccumulator {
    /// An empty accumulator (no activities, no open trace).
    pub fn new() -> DfgAccumulator {
        DfgAccumulator::default()
    }

    /// Appends one activity to the open trace (opening one if needed):
    /// interns the name on first appearance and counts the edge from
    /// the previous activity (or the start marker).
    pub fn observe(&mut self, activity: &str) {
        let id = self.table.intern(activity);
        if id.index() >= self.occ.len() {
            self.occ.resize(id.index() + 1, 0);
        }
        self.occ[id.index()] += 1;
        let from = self.prev.map(|p| p.0).unwrap_or(ACC_START);
        *self.edges.entry((from, id.0)).or_insert(0) += 1;
        self.prev = Some(id);
    }

    /// Seals the open trace: edge to the end marker, case counted.
    /// A no-op when no activity was observed since the last close
    /// (empty traces contribute nothing, as in the batch builders).
    pub fn close_trace(&mut self) {
        if let Some(last) = self.prev.take() {
            *self.edges.entry((last.0, ACC_END)).or_insert(0) += 1;
            self.case_count += 1;
            self.start_occ += 1;
            self.end_occ += 1;
        }
    }

    /// Whether a trace is currently open.
    pub fn trace_open(&self) -> bool {
        self.prev.is_some()
    }

    /// Sealed traces so far.
    pub fn case_count(&self) -> u64 {
        self.case_count
    }

    /// Events observed so far (over all traces).
    pub fn events_observed(&self) -> u64 {
        self.occ.iter().sum()
    }

    /// Adds `other`'s counts into `self`, aligning activities by name
    /// (ids are remapped — the two accumulators may have discovered
    /// activities in any order). `other`'s open-trace position is
    /// transient per-stream state and is not carried over; its counted
    /// events and edges are.
    pub fn merge(&mut self, other: &DfgAccumulator) {
        let remap: Vec<u32> = (0..other.table.len())
            .map(|idx| {
                self.table
                    .intern(other.table.name(ActivityId(idx as u32)))
                    .0
            })
            .collect();
        if self.occ.len() < self.table.len() {
            self.occ.resize(self.table.len(), 0);
        }
        for (idx, &c) in other.occ.iter().enumerate() {
            self.occ[remap[idx] as usize] += c;
        }
        let map = |id: u32| match id {
            ACC_START | ACC_END => id,
            _ => remap[id as usize],
        };
        for (&(from, to), &c) in &other.edges {
            *self.edges.entry((map(from), map(to))).or_insert(0) += c;
        }
        self.start_occ += other.start_occ;
        self.end_occ += other.end_occ;
        self.case_count += other.case_count;
    }

    /// Materializes the accumulated counts as a [`Dfg`] (a copy — the
    /// accumulator keeps growing independently afterwards).
    pub fn to_dfg(&self) -> Dfg {
        let mut acc = DenseAcc::new(self.table.len());
        let (start, end) = (acc.start_idx(), acc.end_idx());
        acc.occ[..self.occ.len()].copy_from_slice(&self.occ);
        acc.occ[start] = self.start_occ;
        acc.occ[end] = self.end_occ;
        acc.case_count = self.case_count;
        let map = |id: u32| match id {
            ACC_START => start,
            ACC_END => end,
            _ => id as usize,
        };
        for (&(from, to), &c) in &self.edges {
            acc.edges.inc(acc.n, map(from), map(to), c);
        }
        Dfg::from_acc(self.table.clone(), acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{CallTopDirs, PathFilter};
    use st_model::{Case, CaseMeta, Event, EventLog, Micros, Pid, Syscall};
    use std::sync::Arc;

    /// Builds the fictitious event-log of the paper's Activity-log
    /// example: traces ⟨a,a,b⟩, ⟨a,a,b⟩, ⟨a,c⟩.
    fn fictitious_log() -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let mut push = |rid: u32, paths: &[&str]| {
            let meta = CaseMeta {
                cid: i.intern("x"),
                host: i.intern("h"),
                rid,
            };
            let events = paths
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    Event::new(
                        Pid(rid),
                        Syscall::Read,
                        Micros(k as u64),
                        Micros(1),
                        i.intern(p),
                    )
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        };
        push(0, &["/a", "/a", "/b"]);
        push(1, &["/a", "/a", "/b"]);
        push(2, &["/a", "/c"]);
        log
    }

    fn build(log: &EventLog) -> (Dfg, MappedLog<'_>) {
        let mapped = MappedLog::new(log, &CallTopDirs::new(2));
        (Dfg::from_mapped(&mapped), mapped)
    }

    #[test]
    fn edges_and_counts_match_definition() {
        let log = fictitious_log();
        let (dfg, _mapped) = build(&log);
        // Activities: read:/a, read:/b, read:/c.
        assert_eq!(dfg.activity_node_count(), 3);
        assert_eq!(dfg.case_count(), 3);
        // ● → a observed in all three traces.
        assert_eq!(dfg.edge_count_named("●", "read:/a"), 3);
        // a → a (self loop) in two traces.
        assert_eq!(dfg.edge_count_named("read:/a", "read:/a"), 2);
        assert_eq!(dfg.edge_count_named("read:/a", "read:/b"), 2);
        assert_eq!(dfg.edge_count_named("read:/a", "read:/c"), 1);
        assert_eq!(dfg.edge_count_named("read:/b", "■"), 2);
        assert_eq!(dfg.edge_count_named("read:/c", "■"), 1);
        // No invented edges.
        assert_eq!(dfg.edge_count_named("read:/b", "read:/c"), 0);
        assert_eq!(dfg.edge_count_named("read:/c", "read:/b"), 0);
        // Occurrences.
        assert_eq!(dfg.occurrences(dfg.node_by_name("read:/a").unwrap()), 5);
        assert_eq!(dfg.occurrences(dfg.node_by_name("read:/b").unwrap()), 2);
        dfg.check_invariants().unwrap();
    }

    #[test]
    fn from_activity_log_equals_from_mapped() {
        let log = fictitious_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let direct = Dfg::from_mapped(&mapped);
        let alog = crate::activity_log::ActivityLog::from_mapped(&mapped);
        let via_alog = Dfg::from_activity_log(&alog, mapped.table());
        assert_eq!(
            direct.edges().collect::<Vec<_>>(),
            via_alog.edges().collect::<Vec<_>>()
        );
        assert_eq!(direct.case_count(), via_alog.case_count());
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for rid in 0..37 {
            let meta = CaseMeta {
                cid: i.intern("a"),
                host: i.intern("h"),
                rid,
            };
            let events = (0..50)
                .map(|k| {
                    let p = format!("/dir{}/f{}", k % 5, (k + rid as usize) % 7);
                    Event::new(
                        Pid(rid),
                        Syscall::Read,
                        Micros(k as u64),
                        Micros(1),
                        i.intern(&p),
                    )
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let seq = Dfg::from_mapped(&mapped);
        for threads in [2, 3, 8] {
            let par = Dfg::par_from_mapped(&mapped, threads);
            assert_eq!(
                seq.edges().collect::<Vec<_>>(),
                par.edges().collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(seq.case_count(), par.case_count());
            par.check_invariants().unwrap();
        }
    }

    #[test]
    fn empty_traces_do_not_create_start_end_edge() {
        let log = fictitious_log();
        // Filter maps nothing.
        let m = PathFilter::new("/nonexistent", CallTopDirs::new(2));
        let mapped = MappedLog::new(&log, &m);
        let dfg = Dfg::from_mapped(&mapped);
        assert_eq!(dfg.case_count(), 0);
        assert_eq!(dfg.total_edge_observations(), 0);
        assert_eq!(dfg.nodes().count(), 0);
    }

    #[test]
    fn single_event_trace_wraps_with_start_and_end() {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        log.push_case(Case::from_events(
            meta,
            vec![Event::new(
                Pid(0),
                Syscall::Read,
                Micros(0),
                Micros(1),
                i.intern("/x/y"),
            )],
        ));
        let (dfg, _) = build(&log);
        assert_eq!(dfg.edge_count_named("●", "read:/x/y"), 1);
        assert_eq!(dfg.edge_count_named("read:/x/y", "■"), 1);
        assert_eq!(dfg.case_count(), 1);
        dfg.check_invariants().unwrap();
    }

    #[test]
    fn filter_edges_keeps_frequent_relations() {
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        // Counts: ●→a 3, a→a 2, a→b 2, a→c 1, b→■ 2, c→■ 1.
        let filtered = dfg.filter_edges(2);
        assert_eq!(filtered.edge_count_named("●", "read:/a"), 3);
        assert_eq!(filtered.edge_count_named("read:/a", "read:/a"), 2);
        assert_eq!(filtered.edge_count_named("read:/a", "read:/c"), 0);
        // read:/c loses all incident edges and disappears.
        assert!(!filtered.nodes().any(|n| filtered.node_name(n) == "read:/c"));
        assert!(filtered.has_activity("read:/b"));
        // Threshold above every count empties the graph.
        let empty = dfg.filter_edges(100);
        assert_eq!(empty.total_edge_observations(), 0);
        assert_eq!(empty.nodes().count(), 0);
        // Threshold 0/1 is the identity.
        let same = dfg.filter_edges(1);
        assert_eq!(
            same.edges().collect::<Vec<_>>(),
            dfg.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_ordering_start_activities_end() {
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        let nodes: Vec<Node> = dfg.nodes().collect();
        assert_eq!(nodes.first(), Some(&Node::Start));
        assert_eq!(nodes.last(), Some(&Node::End));
    }

    #[test]
    fn foreign_activity_ids_do_not_alias_markers() {
        // Ids at or beyond the activity slot count land on the reserved
        // start/end indices in the dense layout; queries must treat
        // them as absent, not as the markers.
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        let m = dfg.table().len() as u32;
        for ghost in [m, m + 1, m + 7] {
            let node = Node::Act(ActivityId(ghost));
            assert_eq!(dfg.occurrences(node), 0, "ghost id {ghost}");
            assert_eq!(dfg.edge_count(Node::Start, node), 0);
            assert_eq!(dfg.edge_count(node, Node::End), 0);
        }
        // The markers themselves still answer.
        assert_eq!(dfg.occurrences(Node::Start), dfg.case_count());
    }

    #[test]
    fn view_projection_equals_filtered_rebuild() {
        let log = fictitious_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let snap = log.snapshot();
        // Slice: only events on /a.
        let keep = |_: &CaseMeta, e: &st_model::Event| snap.resolve(e.path) == "/a";
        let view = st_model::LogView::full(&log).refine(keep);
        let projected = Dfg::from_mapped_view(&mapped, &view);
        projected.check_invariants().unwrap();

        // Reference: filter the events first, then map + build.
        let filtered = log.filter_events(keep);
        let reference = Dfg::from_mapped(&MappedLog::new(&filtered, &CallTopDirs::new(2)));
        let named = |d: &Dfg| {
            let mut edges: Vec<(String, String, u64)> = d
                .edges()
                .map(|(a, b, c)| (d.node_name(a).to_string(), d.node_name(b).to_string(), c))
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(named(&projected), named(&reference));
        assert_eq!(projected.case_count(), reference.case_count());

        // The identity view reproduces the full graph exactly.
        let full = Dfg::from_mapped_view(&mapped, &st_model::LogView::full(&log));
        assert_eq!(
            full.edges().collect::<Vec<_>>(),
            Dfg::from_mapped(&mapped).edges().collect::<Vec<_>>()
        );

        // The empty view yields the empty graph.
        let none = Dfg::from_mapped_view(&mapped, &st_model::LogView::empty(&log));
        assert_eq!(none.case_count(), 0);
        assert_eq!(none.nodes().count(), 0);
    }

    #[test]
    #[should_panic(expected = "same EventLog")]
    fn view_over_foreign_log_panics() {
        let log = fictitious_log();
        let other = fictitious_log();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let _ = Dfg::from_mapped_view(&mapped, &st_model::LogView::full(&other));
    }

    #[test]
    fn clone_preserves_counts() {
        let log = fictitious_log();
        let (dfg, _) = build(&log);
        // Materialize the ordered view, then clone: the clone rebuilds
        // its own view from the dense counts.
        let before: Vec<_> = dfg.edges().collect();
        let cloned = dfg.clone();
        assert_eq!(before, cloned.edges().collect::<Vec<_>>());
        assert_eq!(dfg.case_count(), cloned.case_count());
    }

    /// Named edge list — the id-independent comparison key.
    fn named_edges(d: &Dfg) -> Vec<(String, String, u64)> {
        let mut edges: Vec<(String, String, u64)> = d
            .edges()
            .map(|(a, b, c)| (d.node_name(a).to_string(), d.node_name(b).to_string(), c))
            .collect();
        edges.sort();
        edges
    }

    #[test]
    fn accumulator_equals_batch_build() {
        let log = fictitious_log();
        let (batch, _) = build(&log);
        // The same traces observed one activity at a time.
        let mut acc = DfgAccumulator::new();
        for trace in [
            &["read:/a", "read:/a", "read:/b"][..],
            &["read:/a", "read:/a", "read:/b"][..],
            &["read:/a", "read:/c"][..],
        ] {
            for a in trace {
                acc.observe(a);
            }
            acc.close_trace();
        }
        assert_eq!(acc.case_count(), 3);
        assert_eq!(acc.events_observed(), 8);
        let live = acc.to_dfg();
        live.check_invariants().unwrap();
        assert_eq!(named_edges(&live), named_edges(&batch));
        assert_eq!(live.case_count(), batch.case_count());
    }

    #[test]
    fn accumulator_merge_is_interleaving_independent() {
        // Stream A and stream B discover activities in different orders;
        // merging in either direction yields the same named graph.
        let seed_a = [&["x", "y"][..], &["x", "z"][..]];
        let seed_b = [&["z", "w", "x"][..]];
        let fill = |traces: &[&[&str]]| {
            let mut acc = DfgAccumulator::new();
            for t in traces {
                for a in *t {
                    acc.observe(a);
                }
                acc.close_trace();
            }
            acc
        };
        let (a, b) = (fill(&seed_a), fill(&seed_b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(named_edges(&ab.to_dfg()), named_edges(&ba.to_dfg()));
        assert_eq!(ab.case_count(), 3);

        // Reference: all traces through one accumulator.
        let mut whole = fill(&seed_a);
        for t in &seed_b {
            for act in *t {
                whole.observe(act);
            }
            whole.close_trace();
        }
        assert_eq!(named_edges(&ab.to_dfg()), named_edges(&whole.to_dfg()));
        ab.to_dfg().check_invariants().unwrap();
    }

    #[test]
    fn accumulator_open_trace_is_partial_until_closed() {
        let mut acc = DfgAccumulator::new();
        acc.observe("a");
        acc.observe("b");
        assert!(acc.trace_open());
        // Honest partial: edges so far, no case sealed yet.
        let partial = acc.to_dfg();
        assert_eq!(partial.case_count(), 0);
        assert_eq!(partial.edge_count_named("●", "a"), 1);
        assert_eq!(partial.edge_count_named("a", "b"), 1);
        assert_eq!(partial.edge_count_named("b", "■"), 0);
        acc.close_trace();
        assert!(!acc.trace_open());
        let sealed = acc.to_dfg();
        assert_eq!(sealed.case_count(), 1);
        sealed.check_invariants().unwrap();
        // Empty close is a no-op.
        acc.close_trace();
        assert_eq!(acc.case_count(), 1);
    }

    #[test]
    fn sparse_fallback_matches_matrix_semantics() {
        // Force the sparse path by exceeding the matrix node budget.
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        let meta = CaseMeta {
            cid: i.intern("a"),
            host: i.intern("h"),
            rid: 0,
        };
        let events = (0..(MATRIX_MAX_NODES + 10))
            .map(|k| {
                let p = format!("/p{k}/f");
                Event::new(
                    Pid(1),
                    Syscall::Read,
                    Micros(k as u64),
                    Micros(1),
                    i.intern(&p),
                )
            })
            .collect();
        log.push_case(Case::from_events(meta, events));
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        let dfg = Dfg::from_mapped(&mapped);
        assert!(matches!(dfg.acc.edges, EdgeCounts::Sparse(_)));
        assert_eq!(dfg.case_count(), 1);
        assert_eq!(dfg.activity_node_count(), MATRIX_MAX_NODES + 10);
        dfg.check_invariants().unwrap();
        let par = Dfg::par_from_mapped(&mapped, 4);
        assert_eq!(
            dfg.edges().collect::<Vec<_>>(),
            par.edges().collect::<Vec<_>>()
        );
    }
}
