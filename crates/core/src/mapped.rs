//! The event log with its activity column materialized.
//!
//! The paper's implementation adds an `"activity"` column to the event
//! DataFrame (Fig. 6 step 2) and reuses it for DFG construction, the
//! activity-log multiset, statistics and timelines. [`MappedLog`] is that
//! artifact: per case, per event, an `Option<ActivityId>` (None = the
//! partial mapping left the event out). Applying the mapping is O(n) and
//! embarrassingly parallel across cases, as the paper notes; the
//! [`MappedLog::par_new`] constructor fans cases out to worker threads
//! and merges the per-worker activity tables by name afterwards.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

use st_model::{Event, EventLog};

use crate::activity::{ActivityId, ActivityTable};
use crate::mapping::{MapCtx, Mapping};

/// Memo key for call/path-keyed mappings
/// ([`Mapping::keyed_by_call_path`]): the call identity (named-table
/// index, or the interned name symbol tagged into a disjoint range for
/// `Other`) plus the path symbol. Two events with equal keys are
/// indistinguishable to such a mapping.
#[inline]
fn memo_key(event: &Event) -> (u64, u32) {
    let call = match event.call {
        st_model::Syscall::Other(sym) => (1u64 << 32) | u64::from(sym.0),
        named => u64::from(named.named_index().expect("named variant has an index")),
    };
    (call, event.path.0)
}

/// Multiply-xorshift hasher for the small integer memo keys — the memo
/// must be cheaper than the string formatting + table hashing it
/// replaces, so SipHash is off the table.
#[derive(Default)]
struct MemoHasher(u64);

impl Hasher for MemoHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type Memo = HashMap<(u64, u32), Option<u32>, BuildHasherDefault<MemoHasher>>;

/// Resolves one event's activity as a *local table id*, consulting and
/// feeding the memo when the mapping is call/path-keyed (`memo` is
/// `Some` exactly then). Shared by the sequential and parallel
/// constructors so both benefit — and stay identical.
#[inline]
fn resolve_activity(
    mapping: &dyn Mapping,
    ctx: &MapCtx<'_>,
    meta: &st_model::CaseMeta,
    event: &Event,
    table: &mut ActivityTable,
    buf: &mut String,
    memo: Option<&mut Memo>,
) -> Option<u32> {
    if let Some(memo) = memo {
        let key = memo_key(event);
        if let Some(&cached) = memo.get(&key) {
            return cached;
        }
        buf.clear();
        let resolved = mapping
            .write_activity(ctx, meta, event, buf)
            .then(|| table.intern(buf).0);
        memo.insert(key, resolved);
        resolved
    } else {
        buf.clear();
        mapping
            .write_activity(ctx, meta, event, buf)
            .then(|| table.intern(buf).0)
    }
}

/// An event log plus its per-event activity assignment under a mapping
/// `f : E ⇀ A_f`.
pub struct MappedLog<'log> {
    log: &'log EventLog,
    table: ActivityTable,
    /// `assignments[case][event]` — the activity of the event, if mapped.
    assignments: Vec<Vec<Option<ActivityId>>>,
}

impl<'log> MappedLog<'log> {
    /// Applies `mapping` to every event, single-threaded (one O(n) pass).
    pub fn new(log: &'log EventLog, mapping: &dyn Mapping) -> Self {
        let _span = st_obs::span!("map.apply");
        st_obs::add("events_mapped", log.total_events() as u64);
        let snapshot = log.snapshot();
        let ctx = MapCtx {
            snapshot: &snapshot,
        };
        let mut table = ActivityTable::new();
        let mut assignments = Vec::with_capacity(log.case_count());
        let mut buf = String::new();
        let mut memo = mapping.keyed_by_call_path().then(Memo::default);
        for case in log.cases() {
            let mut row = Vec::with_capacity(case.events.len());
            for event in &case.events {
                row.push(
                    resolve_activity(
                        mapping,
                        &ctx,
                        &case.meta,
                        event,
                        &mut table,
                        &mut buf,
                        memo.as_mut(),
                    )
                    .map(ActivityId),
                );
            }
            assignments.push(row);
        }
        MappedLog {
            log,
            table,
            assignments,
        }
    }

    /// Applies `mapping` in parallel across cases (`threads = 0` uses the
    /// machine's available parallelism). Produces the same table ids as
    /// [`MappedLog::new`] — worker-local tables are re-interned into a
    /// global table in case order, so id assignment stays
    /// first-appearance deterministic.
    pub fn par_new(log: &'log EventLog, mapping: &dyn Mapping, threads: usize) -> Self {
        let n_cases = log.case_count();
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(n_cases.max(1));
        if workers <= 1 {
            return Self::new(log, mapping);
        }

        let snapshot = log.snapshot();
        // Worker-local results: per case, the mapped names as local ids
        // plus the local name table.
        let mut slots: Vec<Option<(Vec<Option<u32>>, ActivityTable)>> =
            (0..n_cases).map(|_| None).collect();
        {
            let next = AtomicUsize::new(0);
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let snapshot = &snapshot;
                    let cases = log.cases();
                    scope.spawn(move || {
                        let ctx = MapCtx { snapshot };
                        let mut buf = String::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= cases.len() {
                                break;
                            }
                            let case = &cases[idx];
                            let mut local = ActivityTable::new();
                            // Per-case memo: local ids are per-case here,
                            // so the memo cannot outlive the table it
                            // indexes into.
                            let mut memo = mapping.keyed_by_call_path().then(Memo::default);
                            let mut row = Vec::with_capacity(case.events.len());
                            for event in &case.events {
                                row.push(resolve_activity(
                                    mapping,
                                    &ctx,
                                    &case.meta,
                                    event,
                                    &mut local,
                                    &mut buf,
                                    memo.as_mut(),
                                ));
                            }
                            if tx.send((idx, row, local)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (idx, row, local) in rx {
                    slots[idx] = Some((row, local));
                }
            });
        }

        // Reduce: merge local tables into the global one in case order so
        // ids match the sequential construction.
        let mut table = ActivityTable::new();
        let mut assignments = Vec::with_capacity(n_cases);
        for slot in slots {
            let (row, local) = slot.expect("every case mapped");
            let remap: Vec<ActivityId> = local.iter().map(|(_, name)| table.intern(name)).collect();
            assignments.push(
                row.into_iter()
                    .map(|opt| opt.map(|lid| remap[lid as usize]))
                    .collect(),
            );
        }
        MappedLog {
            log,
            table,
            assignments,
        }
    }

    /// The underlying event log.
    pub fn log(&self) -> &'log EventLog {
        self.log
    }

    /// The activity name table (`A_f`).
    pub fn table(&self) -> &ActivityTable {
        &self.table
    }

    /// Number of distinct activities `m`.
    pub fn activity_count(&self) -> usize {
        self.table.len()
    }

    /// Total number of *mapped* events.
    pub fn mapped_events(&self) -> usize {
        self.assignments
            .iter()
            .map(|row| row.iter().filter(|a| a.is_some()).count())
            .sum()
    }

    /// Per-case assignment rows, parallel to `log().cases()`.
    pub fn assignments(&self) -> &[Vec<Option<ActivityId>>] {
        &self.assignments
    }

    /// The activity trace `σ_f(c)` of case `case_idx` (Eq. 5): mapped
    /// activities in event order, unmapped events skipped.
    pub fn trace_of(&self, case_idx: usize) -> Vec<ActivityId> {
        self.assignments[case_idx]
            .iter()
            .filter_map(|a| *a)
            .collect()
    }

    /// Iterates `(case_idx, activity, &event)` over all mapped events.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (usize, ActivityId, &st_model::Event)> + '_ {
        self.log
            .cases()
            .iter()
            .enumerate()
            .flat_map(move |(ci, case)| {
                case.events
                    .iter()
                    .zip(&self.assignments[ci])
                    .filter_map(move |(e, a)| a.map(|a| (ci, a, e)))
            })
    }

    /// Iterates `(case_idx, activity, &event)` over the mapped events a
    /// [`st_model::LogView`] keeps — the slice-projection hook: map the
    /// full log once, then project any number of slices (per-file,
    /// per-rank, per-window) without re-applying the mapping.
    ///
    /// `view` must be a view over this mapped log's own event log;
    /// panics otherwise (activity assignments are positional).
    pub fn iter_mapped_view<'a>(
        &'a self,
        view: &'a st_model::LogView<'_>,
    ) -> impl Iterator<Item = (usize, ActivityId, &'a st_model::Event)> + 'a {
        assert!(
            std::ptr::eq(self.log, view.log()),
            "view must slice the same EventLog this MappedLog was built from"
        );
        view.slices().iter().flat_map(move |s| {
            let case = &self.log.cases()[s.case_idx];
            let row = &self.assignments[s.case_idx];
            s.events.iter().filter_map(move |&k| {
                row[k as usize].map(|a| (s.case_idx, a, &case.events[k as usize]))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::CallTopDirs;
    use st_model::{Case, CaseMeta, Event, Micros, Pid, Syscall};
    use std::sync::Arc;

    fn sample_log(cases: usize, events_per_case: usize) -> EventLog {
        let mut log = EventLog::with_new_interner();
        let i = Arc::clone(log.interner());
        for c in 0..cases {
            let meta = CaseMeta {
                cid: i.intern("a"),
                host: i.intern("h"),
                rid: c as u32,
            };
            let events = (0..events_per_case)
                .map(|k| {
                    let path = match k % 3 {
                        0 => "/usr/lib/x/libc.so",
                        1 => "/etc/passwd",
                        _ => "/dev/pts/7",
                    };
                    Event::new(
                        Pid(100 + c as u32),
                        if k % 3 == 2 {
                            Syscall::Write
                        } else {
                            Syscall::Read
                        },
                        Micros(k as u64 * 10),
                        Micros(5),
                        i.intern(path),
                    )
                    .with_size(832)
                })
                .collect();
            log.push_case(Case::from_events(meta, events));
        }
        log
    }

    #[test]
    fn sequential_mapping_builds_activity_column() {
        let log = sample_log(2, 6);
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        assert_eq!(mapped.activity_count(), 3);
        assert_eq!(mapped.mapped_events(), 12);
        assert_eq!(mapped.trace_of(0).len(), 6, "all events of a case mapped");
        let names: Vec<&str> = mapped.table().iter().map(|(_, n)| n).collect();
        assert_eq!(
            names,
            vec!["read:/usr/lib", "read:/etc/passwd", "write:/dev/pts"]
        );
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let log = sample_log(17, 23);
        let seq = MappedLog::new(&log, &CallTopDirs::new(2));
        for threads in [2, 4, 8] {
            let par = MappedLog::par_new(&log, &CallTopDirs::new(2), threads);
            assert_eq!(par.activity_count(), seq.activity_count());
            // Same ids, not just same names: id assignment is
            // first-appearance-in-case-order in both paths.
            for (a, b) in seq.assignments().iter().zip(par.assignments()) {
                assert_eq!(a, b);
            }
            for (id, name) in seq.table().iter() {
                assert_eq!(par.table().name(id), name);
            }
        }
    }

    #[test]
    fn partial_mapping_leaves_events_unmapped() {
        let log = sample_log(1, 6);
        let m = crate::mapping::PathFilter::new("/usr/lib", CallTopDirs::new(2));
        let mapped = MappedLog::new(&log, &m);
        assert_eq!(mapped.activity_count(), 1);
        assert_eq!(mapped.mapped_events(), 2); // k = 0, 3
        assert_eq!(mapped.trace_of(0).len(), 2);
        assert_eq!(mapped.assignments()[0][1], None);
    }

    #[test]
    fn memoized_mapping_matches_unmemoized_closure_exactly() {
        // The same Eq. 4 logic, once as the memoizable built-in and once
        // as an opaque closure (never memoized): identical ids, names
        // and unmapped gaps, sequential and parallel.
        let log = sample_log(9, 31);
        let builtin = crate::mapping::PathFilter::new("/", CallTopDirs::new(2));
        assert!(crate::mapping::Mapping::keyed_by_call_path(&builtin));
        let closure = crate::mapping::FnMapping(
            |ctx: &crate::mapping::MapCtx<'_>, _meta: &CaseMeta, e: &Event| {
                let p = ctx.path(e);
                if p.is_empty() || !p.contains('/') {
                    return None;
                }
                Some(format!(
                    "{}:{}",
                    ctx.call_name(e),
                    crate::mapping::truncate_path(p, 2)
                ))
            },
        );
        assert!(!crate::mapping::Mapping::keyed_by_call_path(&closure));
        let memoized = MappedLog::new(&log, &builtin);
        let plain = MappedLog::new(&log, &closure);
        assert_eq!(memoized.assignments(), plain.assignments());
        for (id, name) in memoized.table().iter() {
            assert_eq!(plain.table().name(id), name);
        }
        let par = MappedLog::par_new(&log, &builtin, 4);
        assert_eq!(par.assignments(), memoized.assignments());
    }

    #[test]
    fn empty_log() {
        let log = EventLog::with_new_interner();
        let mapped = MappedLog::new(&log, &CallTopDirs::new(2));
        assert_eq!(mapped.activity_count(), 0);
        assert_eq!(mapped.mapped_events(), 0);
        let par = MappedLog::par_new(&log, &CallTopDirs::new(2), 4);
        assert_eq!(par.activity_count(), 0);
    }
}
